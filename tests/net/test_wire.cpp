#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "robust/corrupt.hpp"

namespace {

using coop::StatusCode;
using net::DecodeLimits;
using net::FrameHeader;
using net::MsgType;

FrameHeader header_for(MsgType type) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(type);
  h.request_id = 42;
  h.tenant = 7;
  h.deadline_ns = 5'000'000;
  return h;
}

net::PathBatchRequest sample_path_request() {
  net::PathBatchRequest req;
  req.collection = "main";
  req.queries.resize(3);
  for (std::size_t i = 0; i < req.queries.size(); ++i) {
    req.queries[i].y = static_cast<cat::Key>(100 * i + 1);
    req.queries[i].path = {0, 1, 3};
  }
  return req;
}

TEST(Wire, FrameRoundTripPreservesHeaderAndPayload) {
  const auto payload = net::encode(sample_path_request());
  const auto bytes = net::encode_frame(header_for(MsgType::kPathBatch),
                                       payload);
  auto frame = net::decode_frame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame->header.request_id, 42u);
  EXPECT_EQ(frame->header.tenant, 7u);
  EXPECT_EQ(frame->header.deadline_ns, 5'000'000u);
  EXPECT_EQ(frame->payload, payload);

  auto req = net::decode_path_request(frame->payload);
  ASSERT_TRUE(req.ok()) << req.status().to_string();
  EXPECT_EQ(req->collection, "main");
  ASSERT_EQ(req->queries.size(), 3u);
  EXPECT_EQ(req->queries[1].y, 101);
  EXPECT_EQ(req->queries[2].path, (std::vector<cat::NodeId>{0, 1, 3}));
}

TEST(Wire, EveryPayloadTypeRoundTrips) {
  {
    net::PathBatchResponse m;
    m.served_version = 9;
    m.degraded = true;
    m.answers.resize(2);
    m.answers[0].aug_index = {1, 2};
    m.answers[0].proper_index = {3, 4};
    auto d = net::decode_path_response(net::encode(m));
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->served_version, 9u);
    EXPECT_TRUE(d->degraded);
    ASSERT_EQ(d->answers.size(), 2u);
    EXPECT_EQ(d->answers[0].proper_index,
              (std::vector<std::uint32_t>{3, 4}));
  }
  {
    net::PointBatchRequest m;
    m.collection = "points";
    m.points = {{1, 2}, {-3, 4}};
    auto d = net::decode_point_request(net::encode(m));
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->collection, "points");
    ASSERT_EQ(d->points.size(), 2u);
    EXPECT_EQ(d->points[1].x, -3);
  }
  {
    net::PointBatchResponse m;
    m.served_version = 3;
    m.regions = {0, 5, 17};
    auto d = net::decode_point_response(net::encode(m));
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->regions, (std::vector<std::uint64_t>{0, 5, 17}));
  }
  {
    net::HealthResponse m;
    m.draining = 1;
    m.collections = {{"main", 4, 0}, {"alt", 2, 2}};
    auto d = net::decode_health(net::encode(m));
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->draining, 1);
    ASSERT_EQ(d->collections.size(), 2u);
    EXPECT_EQ(d->collections[1].name, "alt");
    EXPECT_EQ(d->collections[1].health, 2);
  }
  {
    net::AdminRequest m{"main", "/tmp/x.snap"};
    auto d = net::decode_admin_request(net::encode(m));
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->collection, "main");
    EXPECT_EQ(d->snapshot_path, "/tmp/x.snap");
  }
  {
    net::AdminResponse m{11};
    auto d = net::decode_admin_response(net::encode(m));
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->version, 11u);
  }
}

TEST(Wire, ErrorPayloadMapsStatusBothWays) {
  const auto s = coop::Status::deadline_exceeded("request expired");
  const net::ErrorResponse e = net::to_wire_error(s);
  auto d = net::decode_error(net::encode(e));
  ASSERT_TRUE(d.ok());
  const coop::Status back = net::from_wire_error(*d);
  EXPECT_EQ(back.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(back.to_string().find("request expired"), std::string::npos);
}

TEST(Wire, UnknownErrorCodeCollapsesToInternal) {
  net::ErrorResponse e{0xDEAD, "who knows"};
  const coop::Status s = net::from_wire_error(e);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // An error frame claiming "OK" must not become a success.
  net::ErrorResponse ok{0, "not really ok"};
  EXPECT_FALSE(net::from_wire_error(ok).ok());
}

TEST(Wire, DecodeRejectsFramesBelowMinimum) {
  std::vector<std::uint8_t> tiny(10, 0);
  const auto f = net::decode_frame(tiny);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kCorrupted);
  EXPECT_NE(f.status().to_string().find("below"), std::string::npos);
}

TEST(Wire, DecodeRejectsOversizeFrames) {
  DecodeLimits limits;
  limits.max_frame_bytes = 128;
  const std::vector<std::uint8_t> payload(200, 0xAB);
  const auto bytes =
      net::encode_frame(header_for(MsgType::kPathBatch), payload);
  const auto f = net::decode_frame(bytes, limits);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kCorrupted);
  EXPECT_NE(f.status().to_string().find("exceeds"), std::string::npos);
}

TEST(Wire, DecodeRejectsBadMagicAndBadVersion) {
  const auto payload = net::encode(sample_path_request());
  {
    auto bytes = net::encode_frame(header_for(MsgType::kPathBatch), payload);
    bytes[4] ^= 0xFF;  // first magic byte
    const auto f = net::decode_frame(bytes);
    ASSERT_FALSE(f.ok());
    EXPECT_NE(f.status().to_string().find("magic"), std::string::npos);
  }
  {
    FrameHeader h = header_for(MsgType::kPathBatch);
    h.version = 9;
    // encode_frame recomputes header_crc, so the bogus version arrives
    // with a *valid* CRC: this exercises the version check, not the CRC.
    const auto bytes = net::encode_frame(h, payload);
    const auto f = net::decode_frame(bytes);
    ASSERT_FALSE(f.ok());
    EXPECT_NE(f.status().to_string().find("version"), std::string::npos);
  }
}

TEST(Wire, DecodeRejectsHeaderCorruption) {
  const auto payload = net::encode(sample_path_request());
  auto bytes = net::encode_frame(header_for(MsgType::kPathBatch), payload);
  bytes[4 + 8] ^= 0x01;  // flip a bit inside request_id
  const auto f = net::decode_frame(bytes);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kCorrupted);
  EXPECT_NE(f.status().to_string().find("header CRC"), std::string::npos);
}

TEST(Wire, PayloadDecodersRejectTrailingGarbage) {
  auto bytes = net::encode(sample_path_request());
  bytes.push_back(0x00);
  const auto d = net::decode_path_request(bytes);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCorrupted);
}

TEST(Wire, PayloadDecodersEnforceLimits) {
  DecodeLimits limits;
  limits.max_queries = 2;
  const auto bytes = net::encode(sample_path_request());  // 3 queries
  const auto d = net::decode_path_request(bytes, limits);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCorrupted);
}

// --- The satellite contract: every robust::corrupt_frame wire fault is
// rejected by the decoder with a descriptive, typed Status. ---

std::vector<std::uint8_t> fresh_frame() {
  return net::encode_frame(header_for(MsgType::kPathBatch),
                           net::encode(sample_path_request()));
}

TEST(WireFaults, TruncatedFrameIsRejected) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    auto bytes = fresh_frame();
    ASSERT_TRUE(robust::corrupt_frame(
                    bytes, robust::CorruptionKind::kWireTruncated, seed)
                    .ok());
    const auto f = net::decode_frame(bytes);
    ASSERT_FALSE(f.ok()) << "seed " << seed;
    EXPECT_EQ(f.status().code(), StatusCode::kCorrupted) << "seed " << seed;
    EXPECT_NE(f.status().to_string().find("truncated"), std::string::npos)
        << f.status().to_string();
  }
}

TEST(WireFaults, LengthLieIsRejected) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    auto bytes = fresh_frame();
    ASSERT_TRUE(robust::corrupt_frame(
                    bytes, robust::CorruptionKind::kWireLengthLie, seed)
                    .ok());
    const auto f = net::decode_frame(bytes);
    ASSERT_FALSE(f.ok()) << "seed " << seed;
    EXPECT_EQ(f.status().code(), StatusCode::kCorrupted) << "seed " << seed;
    EXPECT_NE(f.status().to_string().find("length lie"), std::string::npos)
        << f.status().to_string();
  }
}

TEST(WireFaults, BitFlipIsRejectedByPayloadCrc) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    auto bytes = fresh_frame();
    ASSERT_TRUE(robust::corrupt_frame(
                    bytes, robust::CorruptionKind::kWireBitFlip, seed)
                    .ok());
    const auto f = net::decode_frame(bytes);
    ASSERT_FALSE(f.ok()) << "seed " << seed;
    EXPECT_EQ(f.status().code(), StatusCode::kCorrupted) << "seed " << seed;
    EXPECT_NE(f.status().to_string().find("CRC"), std::string::npos)
        << f.status().to_string();
  }
}

TEST(WireFaults, CorruptFrameRefusesNonFrames) {
  std::vector<std::uint8_t> junk(100, 0x77);
  const auto s = robust::corrupt_frame(
      junk, robust::CorruptionKind::kWireBitFlip, 1);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Structure corruption kinds do not apply to wire frames.
  auto bytes = fresh_frame();
  const auto s2 = robust::corrupt_frame(
      bytes, robust::CorruptionKind::kUnsortedCatalog, 1);
  EXPECT_FALSE(s2.ok());
}

}  // namespace
