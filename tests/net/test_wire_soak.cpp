// A short seeded run of the over-the-wire chaos soak: real sockets,
// real fault injection, hard asserts on the serving contract.  CI runs
// the long version (coopserve --soak) under ASan/UBSan; this keeps the
// harness itself honest in every plain test run.

#include "net/wire_soak.hpp"

#include <gtest/gtest.h>

namespace {

TEST(WireSoak, ShortSeededRunMeetsEveryGoal) {
  net::WireSoakOptions opts;
  opts.seed = 2026;
  opts.duration = std::chrono::milliseconds(1500);
  opts.clients = 4;
  opts.tree_height = 5;
  opts.tree_entries = 1500;
  opts.batch_queries = 32;
  opts.snap_path = "test_wire_soak.snap";
  opts.point_snap_path = "test_wire_soak_points.snap";
  auto out = net::run_wire_soak(opts);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out->wrong_answers, 0u) << out->verdict;
  EXPECT_EQ(out->failed, 0u) << out->verdict << " first: "
                             << out->first_failure;
  EXPECT_TRUE(out->drained_in_grace) << out->verdict;
  EXPECT_TRUE(out->goals_met) << out->verdict;
  EXPECT_EQ(out->verdict.rfind("OK", 0), 0u) << out->verdict;
  // The fleet really exercised every fault class.
  EXPECT_GE(out->answered, 1u);
  EXPECT_GE(out->deadline_errors, 1u);
  EXPECT_GE(out->quota_sheds, 1u);
  EXPECT_GE(out->malformed_rejected, 1u);
  EXPECT_GE(out->resets_injected, 1u);
  EXPECT_GE(out->slow_reads, 1u);
  EXPECT_GE(out->swaps, 1u);
  EXPECT_GE(out->load_unload_cycles, 1u);
  EXPECT_GE(out->drain_refusals, 0u);
}

TEST(WireSoak, SameSeedSameFaultSchedule) {
  // The fault *schedule* is a pure function of (seed, client, iter);
  // wall-clock decides how many iterations run, so totals differ — but
  // a tiny run must still be reproducibly survivable.
  for (int round = 0; round < 2; ++round) {
    net::WireSoakOptions opts;
    opts.seed = 99;
    opts.duration = std::chrono::milliseconds(400);
    opts.clients = 2;
    opts.tree_height = 4;
    opts.tree_entries = 400;
    opts.batch_queries = 8;
    opts.pointloc_regions = 8;
    opts.snap_path = "test_wire_soak2.snap";
    opts.point_snap_path = "test_wire_soak2_points.snap";
    auto out = net::run_wire_soak(opts);
    ASSERT_TRUE(out.ok()) << out.status().to_string();
    EXPECT_EQ(out->wrong_answers, 0u) << out->verdict;
    EXPECT_EQ(out->failed, 0u) << out->verdict << " first: "
                               << out->first_failure;
    EXPECT_TRUE(out->drained_in_grace);
  }
}

}  // namespace
