// Negative tests: the validators must actually catch corruption.  A
// validator that never fires is worse than none — these tests break
// structures on purpose and assert the checks report it.

#include <gtest/gtest.h>

#include <random>

#include "fc/build.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"

namespace {

using cat::CatalogShape;

// fc::Structure is intentionally immutable; the tests below corrupt a
// copy of its parts and rebuild through from_parts.

TEST(Validators, FcDetectsMissingTerminal) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(4, 200, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  std::vector<fc::AugCatalog> aug;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    aug.push_back(s.aug(cat::NodeId(v)));
  }
  aug[3].keys.back() = 12345;  // clobber the +inf terminal
  const auto bad = fc::Structure::from_parts(t, s.sample_k(), std::move(aug));
  // The corruption may surface first through the parent's bridge checks;
  // any nonempty report is a catch.
  EXPECT_FALSE(bad.verify_properties().empty());
}

TEST(Validators, FcDetectsCrossingBridges) {
  std::mt19937_64 rng(2);
  const auto t = cat::make_balanced_binary(4, 300, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  std::vector<fc::AugCatalog> aug;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    aug.push_back(s.aug(cat::NodeId(v)));
  }
  // Find an internal node with >= 2 bridge targets and swap two.
  bool corrupted = false;
  for (std::size_t v = 0; v < t.num_nodes() && !corrupted; ++v) {
    auto& a = aug[v];
    if (a.num_children == 0 || a.keys.size() < 3) {
      continue;
    }
    for (std::size_t i = 0; i + 1 < a.keys.size(); ++i) {
      if (a.bridge[i] < a.bridge[i + 1]) {
        std::swap(a.bridge[i], a.bridge[i + 1]);
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  const auto bad = fc::Structure::from_parts(t, s.sample_k(), std::move(aug));
  EXPECT_FALSE(bad.verify_properties().empty());
}

TEST(Validators, FcDetectsWrongProperMapping) {
  std::mt19937_64 rng(3);
  const auto t = cat::make_balanced_binary(3, 200, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  std::vector<fc::AugCatalog> aug;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    aug.push_back(s.aug(cat::NodeId(v)));
  }
  // Find a node whose proper[] has room to be wrong.
  bool corrupted = false;
  for (auto& a : aug) {
    for (auto& p : a.proper) {
      if (p > 0) {
        p -= 1;
        corrupted = true;
        break;
      }
    }
    if (corrupted) {
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const auto bad = fc::Structure::from_parts(t, s.sample_k(), std::move(aug));
  EXPECT_NE(bad.verify_properties().find("proper"), std::string::npos);
}

TEST(Validators, SubdivisionDetectsCoverageHole) {
  geom::MonotoneSubdivision s;
  s.num_regions = 2;
  s.ymin = 0;
  s.ymax = 2048;
  // Separator 1 covers only the lower half of the strip.
  geom::SubEdge e;
  e.lo = geom::Point{100, 0};
  e.hi = geom::Point{100, 1024};
  e.min_sep = 1;
  e.max_sep = 1;
  s.edges.push_back(e);
  EXPECT_NE(s.validate().find("covered"), std::string::npos);
}

TEST(Validators, SubdivisionDetectsDoubleCoverage) {
  geom::MonotoneSubdivision s;
  s.num_regions = 2;
  s.ymin = 0;
  s.ymax = 1024;
  for (int rep = 0; rep < 2; ++rep) {
    geom::SubEdge e;
    e.lo = geom::Point{100 + 10 * rep, 0};
    e.hi = geom::Point{100 + 10 * rep, 1024};
    e.min_sep = 1;
    e.max_sep = 1;
    s.edges.push_back(e);
  }
  EXPECT_NE(s.validate().find("covered"), std::string::npos);
}

TEST(Validators, SubdivisionDetectsCrossingSeparators) {
  geom::MonotoneSubdivision s;
  s.num_regions = 3;
  s.ymin = 0;
  s.ymax = 1024;
  geom::SubEdge a;  // separator 1 at x = 500
  a.lo = geom::Point{500, 0};
  a.hi = geom::Point{500, 1024};
  a.min_sep = 1;
  a.max_sep = 1;
  geom::SubEdge b;  // separator 2 crossing from x=0 to... left of sep 1
  b.lo = geom::Point{900, 0};
  b.hi = geom::Point{100, 1024};
  b.min_sep = 2;
  b.max_sep = 2;
  s.edges.push_back(a);
  s.edges.push_back(b);
  EXPECT_NE(s.validate().find("cross"), std::string::npos);
}

TEST(Validators, SubdivisionDetectsBadRange) {
  geom::MonotoneSubdivision s;
  s.num_regions = 2;
  s.ymin = 0;
  s.ymax = 16;
  geom::SubEdge e;
  e.lo = geom::Point{0, 0};
  e.hi = geom::Point{0, 16};
  e.min_sep = 1;
  e.max_sep = 9;  // only separator 1 exists
  s.edges.push_back(e);
  EXPECT_NE(s.validate().find("range"), std::string::npos);
}

TEST(Validators, SubdivisionDetectsDownwardEdge) {
  geom::MonotoneSubdivision s;
  s.num_regions = 2;
  s.ymin = 0;
  s.ymax = 16;
  geom::SubEdge e;
  e.lo = geom::Point{0, 16};
  e.hi = geom::Point{0, 0};
  e.min_sep = 1;
  e.max_sep = 1;
  s.edges.push_back(e);
  EXPECT_NE(s.validate().find("upward"), std::string::npos);
}

TEST(Validators, TreeValidateAcceptsGeneratedTrees) {
  std::mt19937_64 rng(4);
  for (int i = 0; i < 5; ++i) {
    const auto t = cat::make_random_tree(50 + i * 31, 1 + i, 200,
                                         CatalogShape::kRandom, rng);
    EXPECT_TRUE(t.validate());
  }
}

}  // namespace
