// Cross-cutting integration coverage:
//   * the thread-pool execution engine must produce the same results as
//     the sequential engine for every search type;
//   * the alpha_scale tuning knob must preserve correctness (Lemma 3 and
//     Lemma 1 hold for any h_i since s_i is derived from it).

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/implicit_search.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"
#include "pointloc/coop_pointloc.hpp"

namespace {

using cat::CatalogShape;

TEST(ThreadsEngine, ExplicitSearchMatchesSequentialEngine) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(8, 20000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s);
  for (int trial = 0; trial < 20; ++trial) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    pram::Machine seq(256, pram::Model::kCrew, pram::Engine::kSequential);
    pram::Machine thr(256, pram::Model::kCrew, pram::Engine::kThreads);
    const auto a = coop::coop_search_explicit(cs, seq, path, y);
    const auto b = coop::coop_search_explicit(cs, thr, path, y);
    ASSERT_EQ(a.proper_index, b.proper_index);
    ASSERT_EQ(seq.stats().steps, thr.stats().steps)
        << "accounting must not depend on the engine";
  }
}

TEST(ThreadsEngine, PointLocationMatches) {
  std::mt19937_64 rng(2);
  const auto sub = geom::make_random_monotone(128, 16, rng);
  const pointloc::SeparatorTree st(sub);
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = geom::random_query_point(sub, rng);
    pram::Machine thr(128, pram::Model::kCrew, pram::Engine::kThreads);
    ASSERT_EQ(pointloc::coop_locate(st, thr, q), sub.locate_brute(q));
  }
}

class AlphaScaleParam : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Scales, AlphaScaleParam,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST_P(AlphaScaleParam, ExplicitSearchStaysCorrect) {
  const double scale = double(GetParam());
  std::mt19937_64 rng(GetParam());
  const auto t = cat::make_balanced_binary(9, 40000, CatalogShape::kSkewed, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s, scale);
  for (std::size_t p : {4, 256, 65536}) {
    pram::Machine m(p);
    for (int trial = 0; trial < 25; ++trial) {
      const auto path = test_helpers::random_root_leaf_path(t, rng);
      const cat::Key y = test_helpers::random_query(t, rng);
      const auto r = coop::coop_search_explicit(cs, m, path, y);
      for (std::size_t i = 0; i < path.size(); ++i) {
        ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y))
            << "scale=" << scale << " p=" << p;
      }
    }
  }
}

TEST_P(AlphaScaleParam, Lemma1StillHolds) {
  const double scale = double(GetParam());
  std::mt19937_64 rng(GetParam() * 7);
  const auto t = cat::make_balanced_binary(8, 20000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s, scale);
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    for (const auto& b : cs.substructure(i).blocks) {
      for (std::size_t z = 0; z < b.nodes.size(); ++z) {
        std::set<std::int32_t> seen;
        for (std::size_t j = 0; j < b.m; ++j) {
          ASSERT_TRUE(seen.insert(b.skel_at(j, z)).second)
              << "scale=" << scale << " T_" << i;
        }
      }
    }
  }
}

TEST_P(AlphaScaleParam, TallerHopsReduceHopCount) {
  const double scale = double(GetParam());
  std::mt19937_64 rng(99);
  const auto t = cat::make_balanced_binary(12, 200000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto base = coop::CoopStructure::build(s, 1.0);
  const auto tuned = coop::CoopStructure::build(s, scale);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  pram::Machine m1(4096), m2(4096);
  const auto r1 = coop::coop_search_explicit(base, m1, path, 12345);
  const auto r2 = coop::coop_search_explicit(tuned, m2, path, 12345);
  EXPECT_LE(r2.hops, r1.hops);
  EXPECT_EQ(r1.proper_index, r2.proper_index);
}

TEST(ImplicitWithTuning, BstPathStaysExact) {
  std::mt19937_64 rng(11);
  const auto t = cat::make_balanced_binary(7, 8000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s, 3.0);
  // BST splits by inorder position.
  std::vector<cat::Key> split(t.num_nodes());
  std::vector<std::pair<cat::NodeId, int>> stack{{t.root(), 0}};
  cat::Key next = 0;
  while (!stack.empty()) {
    auto& [v, st] = stack.back();
    if (st == 0) {
      st = 1;
      if (!t.is_leaf(v)) {
        stack.push_back({t.children(v)[0], 0});
        continue;
      }
    }
    if (st == 1) {
      split[v] = (next += 10);
      st = 2;
      if (!t.is_leaf(v)) {
        stack.push_back({t.children(v)[1], 0});
        continue;
      }
    }
    stack.pop_back();
  }
  pram::Machine m(512);
  for (int trial = 0; trial < 40; ++trial) {
    const cat::Key x = cat::Key(rng() % (t.num_nodes() * 10));
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto branch = [&](cat::NodeId v, std::size_t) -> std::uint32_t {
      return x <= split[v] ? 0 : 1;
    };
    const auto coop_r = coop::coop_search_implicit(cs, m, y, branch);
    const auto seq_r = fc::search_implicit(s, y, branch);
    ASSERT_EQ(coop_r.path, seq_r.path);
    ASSERT_EQ(coop_r.proper_index, seq_r.proper_index);
  }
}

}  // namespace
