// Differential fuzzing across the whole stack: random instances x random
// queries, every cooperative result checked against the brute-force
// oracle and the sequential implementation.  Parameterized by seed so the
// sweep is wide but each instance stays cheap.

#include <gtest/gtest.h>

#include <random>

#include "core/batch.hpp"
#include "core/implicit_search.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "range/point_enclosure.hpp"
#include "range/range_tree.hpp"
#include "range/segment_tree.hpp"

namespace {

using cat::CatalogShape;

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST_P(FuzzSeed, TreeSearchStack) {
  std::mt19937_64 rng(GetParam());
  const std::uint32_t height = 2 + rng() % 7;
  const std::size_t entries = 1 + rng() % 4000;
  const auto shape = static_cast<CatalogShape>(rng() % 5);
  const auto t = cat::make_balanced_binary(height, entries, shape, rng);
  const auto s = fc::Structure::build(t);
  ASSERT_EQ(s.verify_properties(), "");
  const auto cs = coop::CoopStructure::build(s);
  const std::size_t p = 1 + rng() % 2048;
  pram::Machine m(p);
  for (int trial = 0; trial < 30; ++trial) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto coop_r = coop::coop_search_explicit(cs, m, path, y);
    const auto seq_r = fc::search_explicit(s, path, y);
    ASSERT_EQ(coop_r.proper_index, seq_r.proper_index);
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(coop_r.proper_index[i],
                test_helpers::brute_find(t, path[i], y));
    }
  }
}

TEST_P(FuzzSeed, PointLocationStack) {
  std::mt19937_64 rng(GetParam() * 3);
  const std::size_t regions = 1 + rng() % 200;
  const std::size_t bands = 1 + rng() % 24;
  const auto sub = (GetParam() % 2 == 0)
                       ? geom::make_random_monotone(regions, bands, rng)
                       : geom::make_jagged(regions, bands, rng);
  ASSERT_EQ(sub.validate(), "");
  pointloc::SeparatorTree st(sub);
  st.precompute_gap_branches();
  const std::size_t p = 1 + rng() % 4096;
  pram::Machine m(p);
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = geom::random_query_point(sub, rng);
    const std::size_t expect = sub.locate_brute(q);
    ASSERT_EQ(pointloc::coop_locate(st, m, q), expect)
        << "regions=" << regions << " bands=" << bands << " p=" << p;
    ASSERT_EQ(st.locate(q), expect);
    ASSERT_EQ(st.locate_with_gaps(q), expect);
    ASSERT_EQ(st.locate_no_bridges(q), expect);
  }
}

TEST_P(FuzzSeed, RetrievalStack) {
  std::mt19937_64 rng(GetParam() * 7);
  const std::size_t n = 1 + rng() % 800;
  const std::size_t p = 1 + rng() % 512;
  // Segments.
  {
    std::vector<range::VSegment> segs;
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Coord x = geom::Coord(rng() % 5000) * 2;
      const geom::Coord ylo = geom::Coord(rng() % 5000) * 2;
      segs.push_back(
          range::VSegment{x, ylo, ylo + 2 + geom::Coord(rng() % 3000) * 2});
    }
    const range::SegmentIntersectionTree t(std::move(segs));
    pram::Machine m(p);
    for (int trial = 0; trial < 15; ++trial) {
      const geom::Coord y = 2 * geom::Coord(rng() % 8000) + 1;
      const geom::Coord x1 = geom::Coord(rng() % 10000);
      const geom::Coord x2 = x1 + geom::Coord(rng() % 10000);
      auto got_r = t.coop_query_ranges(m, y, x1, x2);
      auto got = range::retrieve_direct(t.tree(), m, got_r);
      auto expect = t.query_brute(y, x1, x2);
      std::sort(got.begin(), got.end());
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(got, expect);
    }
  }
  // Rectangles.
  {
    std::vector<range::Rect> rects;
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Coord x1 = geom::Coord(rng() % 5000);
      const geom::Coord y1 = geom::Coord(rng() % 5000);
      rects.push_back(range::Rect{x1, x1 + geom::Coord(rng() % 3000), y1,
                                  y1 + geom::Coord(rng() % 3000)});
    }
    const range::PointEnclosureTree t(std::move(rects));
    pram::Machine m(p);
    for (int trial = 0; trial < 15; ++trial) {
      const geom::Coord x = geom::Coord(rng() % 9000);
      const geom::Coord y = geom::Coord(rng() % 9000);
      auto got = t.coop_query(m, x, y);
      auto expect = t.query_brute(x, y);
      std::sort(got.begin(), got.end());
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(got, expect);
    }
  }
}

TEST_P(FuzzSeed, RangeTreeStack) {
  std::mt19937_64 rng(GetParam() * 13);
  const std::size_t n = 1 + rng() % 600;
  std::vector<range::Point2> pts;
  for (std::size_t i = 0; i < n; ++i) {
    // Deliberately small coordinate space: many duplicates.
    pts.push_back(range::Point2{geom::Coord(rng() % 50),
                                geom::Coord(rng() % 50)});
  }
  const range::RangeTree2D t(std::move(pts));
  pram::Machine m(1 + rng() % 1024);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Coord x1 = geom::Coord(rng() % 50);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 30);
    const geom::Coord y1 = geom::Coord(rng() % 50);
    const geom::Coord y2 = y1 + geom::Coord(rng() % 30);
    auto ranges = t.coop_query_ranges(m, x1, x2, y1, y2);
    auto got = range::retrieve_direct(t.tree(), m, ranges);
    auto expect = t.query_brute(x1, x2, y1, y2);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect);
  }
}

TEST_P(FuzzSeed, GeneralTreesAndBatches) {
  std::mt19937_64 rng(GetParam() * 17);
  const std::size_t deg = 1 + rng() % 5;
  const auto t = cat::make_random_tree(20 + rng() % 300, deg,
                                       100 + rng() % 2000,
                                       CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  ASSERT_EQ(s.verify_properties(), "");
  const auto cs = coop::CoopStructure::build(s);
  pram::Machine m(1 + rng() % 512);
  std::vector<coop::BatchQuery> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(coop::BatchQuery{test_helpers::random_chain(t, rng),
                                       test_helpers::random_query(t, rng)});
  }
  const auto batch = coop::coop_search_batch(cs, m, queries);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
      ASSERT_EQ(batch.results[qi].proper_index[i],
                test_helpers::brute_find(t, queries[qi].path[i],
                                         queries[qi].y));
    }
  }
}

}  // namespace
