#include "serve/soak.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>

namespace {

// The chaos soak acceptance run (DESIGN.md §9): worker throws, deadline
// squeezes, publish storms, and payload bit-flips against the full
// frontend + scrubber + registry stack.  Must finish with
//
//   zero unexpected batch failures, zero wrong answers among admitted
//   batches, and at least one admission shed, breaker trip, scrubber
//   quarantine, and registry rollback.
//
// COOP_SOAK_MS overrides the duration (CI keeps it short under
// sanitizers; run with e.g. COOP_SOAK_MS=10000 for the local soak).
TEST(ChaosSoak, SurvivesSeededChaosWithZeroWrongAnswers) {
  serve::SoakOptions opts;
  opts.seed = 7;
  opts.duration = std::chrono::milliseconds(2500);
  if (const char* ms = std::getenv("COOP_SOAK_MS")) {
    opts.duration = std::chrono::milliseconds(std::atol(ms));
  }
  opts.snap_path = testing::TempDir() + "coop_chaos_soak.snap";

  const auto outcome = serve::run_chaos_soak(opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  const serve::SoakOutcome& o = *outcome;

  // Correctness under chaos, the non-negotiables.
  EXPECT_EQ(o.wrong_answers, 0u) << o.verdict;
  EXPECT_EQ(o.failed, 0u) << o.verdict;

  // Chaos coverage: every fault class actually fired and was handled.
  EXPECT_TRUE(o.goals_met) << o.verdict;
  EXPECT_GE(o.frontend.shed, 1u) << "no admission shed was observed";
  EXPECT_GE(o.frontend.breaker_trips, 1u) << "the breaker never tripped";
  EXPECT_GE(o.scrubber.quarantines, 1u) << "the scrubber never quarantined";
  EXPECT_GE(o.scrubber.rollbacks, 1u) << "no rollback was performed";
  EXPECT_GE(o.bitflips, 1u);
  EXPECT_GE(o.publishes, 1u);

  // The chaos was real: work was admitted and some of it degraded
  // through the retry machinery rather than failing.
  EXPECT_GT(o.admitted, 0u);
  EXPECT_GT(o.degraded, 0u);
  EXPECT_EQ(o.batches, o.admitted + o.shed + o.shed_breaker + o.failed);
  EXPECT_EQ(o.verdict.rfind("OK", 0), 0u) << o.verdict;
}

}  // namespace
