// Boundary conditions across the stack: degenerate trees, empty catalogs,
// extreme keys, minimal geometric inputs.

#include <gtest/gtest.h>

#include <random>

#include "core/implicit_search.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "range/range_tree.hpp"
#include "range/segment_tree.hpp"

namespace {

using cat::CatalogShape;
using cat::Key;
using cat::NodeId;

TEST(EdgeCases, AllCatalogsEmpty) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(5, 0, CatalogShape::kUniform, rng);
  const auto s = fc::Structure::build(t);
  EXPECT_EQ(s.verify_properties(), "");
  const auto cs = coop::CoopStructure::build(s);
  pram::Machine m(64);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  const auto r = coop::coop_search_explicit(cs, m, path, 42);
  // Every find lands on the +inf sentinel (index 0 of an empty catalog).
  for (std::size_t i = 0; i < path.size(); ++i) {
    EXPECT_EQ(r.proper_index[i], 0u);
    EXPECT_EQ(t.catalog(path[i]).key(0), cat::kInfinity);
  }
}

TEST(EdgeCases, SingleEntryEverywhere) {
  std::mt19937_64 rng(2);
  auto t = cat::make_balanced_binary(4, 0, CatalogShape::kUniform, rng);
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const std::vector<Key> keys{Key(v) * 10 + 1};
    t.set_catalog(NodeId(v), cat::Catalog::from_sorted_keys(keys));
  }
  const auto s = fc::Structure::build(t);
  EXPECT_EQ(s.verify_properties(), "");
  const auto cs = coop::CoopStructure::build(s);
  pram::Machine m(16);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  for (Key y : {Key(0), Key(5), Key(1000)}) {
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y));
    }
  }
}

TEST(EdgeCases, ExtremeKeys) {
  std::mt19937_64 rng(3);
  const auto t = cat::make_balanced_binary(6, 1000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s);
  pram::Machine m(256);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  for (Key y : {std::numeric_limits<Key>::min(), Key(-1), Key(0),
                cat::kInfinity - 1}) {
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y))
          << "y=" << y;
    }
  }
}

TEST(EdgeCases, HeightZeroTree) {
  std::mt19937_64 rng(4);
  const auto t = cat::make_balanced_binary(0, 100, CatalogShape::kUniform, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s);
  for (std::size_t p : {1, 7, 1000}) {
    pram::Machine m(p);
    const std::vector<NodeId> path{t.root()};
    const auto r = coop::coop_search_explicit(cs, m, path, 12345);
    EXPECT_EQ(r.proper_index[0], test_helpers::brute_find(t, t.root(), 12345));
  }
}

TEST(EdgeCases, ProcessorCountsAroundSubstructureBoundaries) {
  std::mt19937_64 rng(5);
  const auto t = cat::make_balanced_binary(8, 30000, CatalogShape::kSkewed, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  // p around 2^{2^i} boundaries: 4, 5, 16, 17, 256, 257, 65536, 65537.
  for (std::size_t p : {1, 2, 3, 4, 5, 15, 16, 17, 255, 256, 257, 65535,
                        65536, 65537}) {
    pram::Machine m(p);
    const auto r = coop::coop_search_explicit(cs, m, path, 777);
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], 777))
          << "p=" << p;
    }
  }
}

TEST(EdgeCases, OneRegionSubdivision) {
  std::mt19937_64 rng(6);
  const auto sub = geom::make_random_monotone(1, 3, rng);
  EXPECT_TRUE(sub.edges.empty());
  const pointloc::SeparatorTree st(sub);
  pram::Machine m(16);
  const auto q = geom::random_query_point(sub, rng);
  EXPECT_EQ(pointloc::coop_locate(st, m, q), 0u);
  EXPECT_EQ(st.locate(q), 0u);
}

TEST(EdgeCases, TwoRegionSubdivision) {
  std::mt19937_64 rng(7);
  const auto sub = geom::make_random_monotone(2, 2, rng);
  const pointloc::SeparatorTree st(sub);
  pram::Machine m(8);
  for (int t = 0; t < 50; ++t) {
    const auto q = geom::random_query_point(sub, rng);
    ASSERT_EQ(pointloc::coop_locate(st, m, q), sub.locate_brute(q));
  }
}

TEST(EdgeCases, EmptySegmentSet) {
  const range::SegmentIntersectionTree t(std::vector<range::VSegment>{});
  pram::Machine m(8);
  const auto ranges = t.coop_query_ranges(m, 5, 0, 100);
  EXPECT_EQ(range::total_count(ranges), 0u);
}

TEST(EdgeCases, RangeTreeSinglePoint) {
  const range::RangeTree2D t({range::Point2{5, 5}});
  pram::Machine m(4);
  auto hit = t.coop_query_ranges(m, 5, 5, 5, 5);
  EXPECT_EQ(range::total_count(hit), 1u);
  auto miss = t.coop_query_ranges(m, 6, 7, 5, 5);
  EXPECT_EQ(range::total_count(miss), 0u);
}

TEST(EdgeCases, SegmentsTouchingQueryLevelBoundaries) {
  // y == ylo is inside (half-open), y == yhi is outside.
  std::vector<range::VSegment> segs{{10, 100, 200}};
  const range::SegmentIntersectionTree t(std::move(segs));
  EXPECT_EQ(t.query_brute(100, 0, 20).size(), 1u);
  EXPECT_EQ(t.query_brute(200, 0, 20).size(), 0u);
  auto at_lo = t.query_ranges(100, 0, 20);
  EXPECT_EQ(range::total_count(at_lo), 1u);
  auto at_hi = t.query_ranges(200, 0, 20);
  EXPECT_EQ(range::total_count(at_hi), 0u);
}

TEST(EdgeCases, ImplicitOnMinimalTree) {
  std::mt19937_64 rng(8);
  const auto t = cat::make_balanced_binary(1, 10, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s);
  pram::Machine m(4);
  const auto left = [](NodeId, std::size_t) -> std::uint32_t { return 0; };
  const auto r = coop::coop_search_implicit(cs, m, 5, left);
  EXPECT_EQ(r.path.size(), 2u);
  EXPECT_EQ(r.path[1], t.children(t.root())[0]);
}

}  // namespace
