#include "pram/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "pram/memory.hpp"

namespace {

TEST(Machine, ExecRunsEveryVirtualProcessorOnce) {
  pram::Machine m(4);
  std::vector<int> touched(100, 0);
  m.exec(100, [&](std::size_t pid) { touched[pid] += 1; });
  EXPECT_TRUE(std::all_of(touched.begin(), touched.end(),
                          [](int x) { return x == 1; }));
}

TEST(Machine, BrentAccounting) {
  pram::Machine m(8);
  m.exec(8, [](std::size_t) {});
  EXPECT_EQ(m.stats().steps, 1u);
  EXPECT_EQ(m.stats().work, 8u);
  m.exec(9, [](std::size_t) {});  // ceil(9/8) = 2 more steps
  EXPECT_EQ(m.stats().steps, 3u);
  EXPECT_EQ(m.stats().work, 17u);
  m.exec(1, [](std::size_t) {});
  EXPECT_EQ(m.stats().steps, 4u);
}

TEST(Machine, ExecKChargesMultiplier) {
  pram::Machine m(4);
  m.exec_k(4, 10, [](std::size_t) {});
  EXPECT_EQ(m.stats().steps, 10u);
  EXPECT_EQ(m.stats().work, 40u);
}

TEST(Machine, SequentialCharging) {
  pram::Machine m(16);
  int ran = 0;
  m.sequential(7, [&] { ran = 1; });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(m.stats().steps, 7u);
  EXPECT_EQ(m.stats().work, 7u);
}

TEST(Machine, ZeroActiveIsFree) {
  pram::Machine m(4);
  m.exec(0, [](std::size_t) { FAIL() << "must not run"; });
  EXPECT_EQ(m.stats().steps, 0u);
  EXPECT_EQ(m.stats().instructions, 0u);
}

TEST(Machine, MaxActiveTracked) {
  pram::Machine m(2);
  m.exec(5, [](std::size_t) {});
  m.exec(3, [](std::size_t) {});
  EXPECT_EQ(m.stats().max_active, 5u);
}

TEST(Machine, ResetStats) {
  pram::Machine m(2);
  m.exec(10, [](std::size_t) {});
  m.reset_stats();
  EXPECT_EQ(m.stats().steps, 0u);
  EXPECT_EQ(m.stats().work, 0u);
}

TEST(Machine, ProcessorsClampedToOne) {
  pram::Machine m(0);
  EXPECT_EQ(m.processors(), 1u);
}

TEST(Machine, ThreadsEngineProducesSameResults) {
  pram::Machine m(4, pram::Model::kCrew, pram::Engine::kThreads);
  std::vector<std::atomic<int>> counts(1000);
  m.exec(1000, [&](std::size_t pid) {
    counts[pid].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
  EXPECT_EQ(m.stats().work, 1000u);
}

TEST(MachineAudit, ErewDetectsConcurrentRead) {
  pram::Machine m(4, pram::Model::kErew);
  pram::SharedArray<int> a(8, 0);
  a.enable_audit(&m, "a");
  m.exec(4, [&](std::size_t) { (void)a.read(0); });
  EXPECT_GT(m.stats().violations, 0u);
  EXPECT_NE(m.first_violation().find("EREW"), std::string::npos);
}

TEST(MachineAudit, ErewAllowsDisjointAccess) {
  pram::Machine m(4, pram::Model::kErew);
  pram::SharedArray<int> a(8, 0);
  a.enable_audit(&m, "a");
  m.exec(8, [&](std::size_t pid) { a.write(pid, int(pid)); });
  m.exec(8, [&](std::size_t pid) { (void)a.read(pid); });
  EXPECT_EQ(m.stats().violations, 0u);
}

TEST(MachineAudit, CrewAllowsConcurrentReadRejectsConcurrentWrite) {
  pram::Machine m(4, pram::Model::kCrew);
  pram::SharedArray<int> a(8, 0);
  a.enable_audit(&m, "a");
  m.exec(4, [&](std::size_t) { (void)a.read(3); });
  EXPECT_EQ(m.stats().violations, 0u);
  m.exec(4, [&](std::size_t) { a.write(3, 1); });
  EXPECT_GT(m.stats().violations, 0u);
}

TEST(MachineAudit, CrewDetectsReadWriteHazard) {
  pram::Machine m(4, pram::Model::kCrew);
  pram::SharedArray<int> a(8, 0);
  a.enable_audit(&m, "a");
  m.exec(2, [&](std::size_t pid) {
    if (pid == 0) {
      a.write(5, 1);
    } else {
      (void)a.read(5);
    }
  });
  EXPECT_GT(m.stats().violations, 0u);
}

TEST(MachineAudit, CrcwAllowsEverything) {
  pram::Machine m(4, pram::Model::kCrcw);
  pram::SharedArray<int> a(8, 0);
  a.enable_audit(&m, "a");
  m.exec(4, [&](std::size_t pid) {
    a.write(0, int(pid));
    (void)a.read(0);
  });
  EXPECT_EQ(m.stats().violations, 0u);
}

TEST(StepStats, Accumulate) {
  pram::StepStats a, b;
  a.steps = 3;
  a.work = 10;
  a.max_active = 4;
  b.steps = 2;
  b.work = 5;
  b.max_active = 9;
  a += b;
  EXPECT_EQ(a.steps, 5u);
  EXPECT_EQ(a.work, 15u);
  EXPECT_EQ(a.max_active, 9u);
}

}  // namespace
