#include "pram/coop_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace {

using pram::Machine;

std::vector<long> sorted_distinct(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<long> v(n);
  long cur = 0;
  for (auto& x : v) {
    cur += 1 + long(rng() % 10);
    x = cur;
  }
  return v;
}

class CoopSearchParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    NxP, CoopSearchParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(0, 4),
                      std::make_pair<std::size_t, std::size_t>(1, 4),
                      std::make_pair<std::size_t, std::size_t>(10, 1),
                      std::make_pair<std::size_t, std::size_t>(10, 2),
                      std::make_pair<std::size_t, std::size_t>(1000, 1),
                      std::make_pair<std::size_t, std::size_t>(1000, 4),
                      std::make_pair<std::size_t, std::size_t>(1000, 16),
                      std::make_pair<std::size_t, std::size_t>(1000, 1000),
                      std::make_pair<std::size_t, std::size_t>(65536, 7),
                      std::make_pair<std::size_t, std::size_t>(65536, 255)));

TEST_P(CoopSearchParam, MatchesStdLowerBound) {
  const auto [n, p] = GetParam();
  const auto v = sorted_distinct(n, n * 31 + p);
  Machine m(p);
  std::mt19937_64 rng(n + p);
  for (int trial = 0; trial < 200; ++trial) {
    long y;
    if (n == 0 || trial % 4 == 0) {
      y = long(rng() % 10000);  // arbitrary, possibly out of range
    } else {
      // Often probe exact keys and off-by-one neighbours.
      const long base = v[rng() % n];
      y = base + long(trial % 3) - 1;
    }
    const std::size_t got =
        pram::coop_lower_bound<long>(m, std::span<const long>(v), y);
    const std::size_t expect = static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), y) - v.begin());
    ASSERT_EQ(got, expect) << "n=" << n << " p=" << p << " y=" << y;
  }
}

TEST(CoopSearch, StepCountIsLogOverLogP) {
  const std::size_t n = 1 << 20;
  const auto v = sorted_distinct(n, 99);
  for (std::size_t p : {2, 4, 16, 256, 1024}) {
    Machine m(p);
    (void)pram::coop_lower_bound<long>(m, std::span<const long>(v),
                                       v[n / 2]);
    const auto bound = pram::coop_search_rounds(n, p);
    // Each round is O(1) instructions; allow a small constant factor.
    EXPECT_LE(m.stats().steps, 6 * bound + 8)
        << "p=" << p << " steps=" << m.stats().steps;
  }
}

TEST(CoopSearch, MoreProcessorsNeverSlower) {
  const std::size_t n = 1 << 16;
  const auto v = sorted_distinct(n, 5);
  std::uint64_t prev = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t p : {2, 8, 64, 4096}) {
    Machine m(p);
    (void)pram::coop_lower_bound<long>(m, std::span<const long>(v), v[123]);
    EXPECT_LE(m.stats().steps, prev) << "p=" << p;
    prev = m.stats().steps;
  }
}

TEST(CoopSearchRounds, Formula) {
  EXPECT_EQ(pram::coop_search_rounds(1, 8), 1u);
  EXPECT_GE(pram::coop_search_rounds(1 << 20, 2), 12u);
  EXPECT_LE(pram::coop_search_rounds(1 << 20, 1 << 20), 2u);
}

TEST(CoopSearch, AllElementsSmallerReturnsSize) {
  const auto v = sorted_distinct(100, 1);
  Machine m(8);
  const auto got = pram::coop_lower_bound<long>(m, std::span<const long>(v),
                                                v.back() + 1);
  EXPECT_EQ(got, v.size());
}

TEST(CoopSearch, SmallerThanAllReturnsZero) {
  const auto v = sorted_distinct(100, 2);
  Machine m(8);
  const auto got =
      pram::coop_lower_bound<long>(m, std::span<const long>(v), v[0] - 1);
  EXPECT_EQ(got, 0u);
}

TEST_P(CoopSearchParam, ErewVariantMatchesStdLowerBound) {
  const auto [n, p] = GetParam();
  const auto v = sorted_distinct(n, n * 47 + p);
  pram::Machine m(p, pram::Model::kErew);
  std::mt19937_64 rng(n * 3 + p);
  for (int trial = 0; trial < 100; ++trial) {
    const long y = n == 0 ? 5 : v[rng() % std::max<std::size_t>(1, n)] +
                                    long(trial % 3) - 1;
    const std::size_t got =
        pram::erew_lower_bound<long>(m, std::span<const long>(v), y);
    const std::size_t expect = static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), y) - v.begin());
    ASSERT_EQ(got, expect) << "n=" << n << " p=" << p << " y=" << y;
  }
}

TEST(ErewSearch, StepBoundLogPPlusLogNOverP) {
  const std::size_t n = 1 << 20;
  const auto v = sorted_distinct(n, 123);
  for (std::size_t p : {2, 16, 256, 4096}) {
    pram::Machine m(p, pram::Model::kErew);
    (void)pram::erew_lower_bound<long>(m, std::span<const long>(v), v[77]);
    const double bound = 3.0 * (std::log2(double(p)) +
                                std::log2(double(n) / double(p) + 2)) +
                         20;
    EXPECT_LE(double(m.stats().steps), bound) << "p=" << p;
  }
}

TEST(ErewSearch, NoModelViolations) {
  // The internal arrays are built fresh per call; the audit covers the
  // broadcast tree, the candidate cells, and the reduction.
  const auto v = sorted_distinct(4096, 9);
  pram::Machine m(64, pram::Model::kErew);
  for (long y : {0L, 100L, 999999L}) {
    (void)pram::erew_lower_bound<long>(m, std::span<const long>(v), y);
  }
  EXPECT_EQ(m.stats().violations, 0u) << m.first_violation();
}

TEST(ErewSearch, BeatsCrewAtVeryLargeP) {
  // For p close to n the EREW bound log(n/p) + log p ~ log p loses to
  // CREW's log n/log p ~ 1... but for moderate p the two are comparable;
  // just pin both curves.
  const std::size_t n = 1 << 18;
  const auto v = sorted_distinct(n, 11);
  pram::Machine crew(1 << 9, pram::Model::kCrew);
  pram::Machine erew(1 << 9, pram::Model::kErew);
  (void)pram::coop_lower_bound<long>(crew, std::span<const long>(v), v[5]);
  (void)pram::erew_lower_bound<long>(erew, std::span<const long>(v), v[5]);
  EXPECT_LT(crew.stats().steps, erew.stats().steps)
      << "CREW must win at p = 512 (concurrent reads are powerful)";
}

TEST(CoopSearch, CrewAuditCleanViaSharedProbes) {
  // The algorithm was designed for CREW; run it and simply check it
  // completes under a CREW machine (the probe arrays are internal, so this
  // is a smoke test of the declared model).
  const auto v = sorted_distinct(5000, 3);
  Machine m(16, pram::Model::kCrew);
  for (long y : {0L, 5L, 123L, 100000L}) {
    (void)pram::coop_lower_bound<long>(m, std::span<const long>(v), y);
  }
  EXPECT_EQ(m.stats().violations, 0u) << m.first_violation();
}

}  // namespace
