#include "pram/primitives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

namespace {

using pram::Machine;
using pram::SharedArray;

class PrimitiveSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sweep, PrimitiveSizes,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 100, 257,
                                           1024, 5000));

TEST_P(PrimitiveSizes, BroadcastFillsEveryCell) {
  const std::size_t n = GetParam();
  Machine m(4, pram::Model::kErew);
  SharedArray<int> out(n, -1);
  out.enable_audit(&m, "out");
  pram::broadcast(m, out, 42);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], 42);
  }
  EXPECT_EQ(m.stats().violations, 0u) << m.first_violation();
}

TEST_P(PrimitiveSizes, ReduceSum) {
  const std::size_t n = GetParam();
  Machine m(8, pram::Model::kErew);
  SharedArray<long> a(n);
  long expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = long(i) - 3;
    expect += a[i];
  }
  const long got =
      pram::reduce(m, a, 0L, [](long x, long y) { return x + y; });
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, ReduceMax) {
  const std::size_t n = GetParam();
  Machine m(3);
  SharedArray<long> a(n);
  std::mt19937_64 rng(n);
  long expect = std::numeric_limits<long>::min();
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = long(rng() % 100000);
    expect = std::max(expect, a[i]);
  }
  const long got = pram::reduce(m, a, std::numeric_limits<long>::min(),
                                [](long x, long y) { return std::max(x, y); });
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSizes, ExclusiveScanMatchesStd) {
  const std::size_t n = GetParam();
  Machine m(8, pram::Model::kErew);
  SharedArray<long> a(n);
  std::mt19937_64 rng(n * 7);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = long(rng() % 1000);
  }
  SharedArray<long> out;
  pram::exclusive_scan(m, a, out, 0L, [](long x, long y) { return x + y; });
  std::vector<long> expect(n);
  std::exclusive_scan(a.raw().begin(), a.raw().end(), expect.begin(), 0L);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], expect[i]) << "i=" << i;
  }
}

TEST_P(PrimitiveSizes, InclusiveScanMatchesStd) {
  const std::size_t n = GetParam();
  Machine m(5);
  SharedArray<long> a(n);
  std::mt19937_64 rng(n * 13);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = long(rng() % 1000) - 500;
  }
  SharedArray<long> out;
  pram::inclusive_scan(m, a, out, 0L, [](long x, long y) { return x + y; });
  std::vector<long> expect(n);
  std::inclusive_scan(a.raw().begin(), a.raw().end(), expect.begin());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], expect[i]) << "i=" << i;
  }
}

TEST_P(PrimitiveSizes, PackIndicesKeepsFlaggedPositionsInOrder) {
  const std::size_t n = GetParam();
  Machine m(8);
  SharedArray<std::uint8_t> flags(n);
  std::mt19937_64 rng(n * 31);
  std::vector<std::size_t> expect;
  for (std::size_t i = 0; i < n; ++i) {
    flags[i] = (rng() % 3 == 0) ? 1 : 0;
    if (flags[i]) {
      expect.push_back(i);
    }
  }
  SharedArray<std::size_t> out;
  const std::size_t cnt = pram::pack_indices(m, flags, out);
  ASSERT_EQ(cnt, expect.size());
  for (std::size_t i = 0; i < cnt; ++i) {
    EXPECT_EQ(out[i], expect[i]);
  }
}

TEST(ScanDepth, LogarithmicSteps) {
  // The Blelloch scan must cost O(n/p + log n) steps, not O(n).
  const std::size_t n = 1 << 14;
  Machine m(n);  // enough processors that depth dominates
  SharedArray<long> a(n, 1);
  SharedArray<long> out;
  pram::exclusive_scan(m, a, out, 0L, [](long x, long y) { return x + y; });
  EXPECT_LE(m.stats().steps, 4 * pram::ceil_log2(n) + 10);
}

struct MergeCase {
  std::size_t na, nb;
};

class MergeSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeSizes,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(0, 0),
                      std::make_pair<std::size_t, std::size_t>(0, 5),
                      std::make_pair<std::size_t, std::size_t>(5, 0),
                      std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(10, 10),
                      std::make_pair<std::size_t, std::size_t>(100, 3),
                      std::make_pair<std::size_t, std::size_t>(3, 100),
                      std::make_pair<std::size_t, std::size_t>(1000, 1000),
                      std::make_pair<std::size_t, std::size_t>(777, 1234)));

TEST_P(MergeSizes, MergeParallelMatchesStdMerge) {
  const auto [na, nb] = GetParam();
  Machine m(8);
  std::mt19937_64 rng(na * 1000 + nb);
  std::vector<long> a(na), b(nb);
  for (auto& x : a) {
    x = long(rng() % 500);
  }
  for (auto& x : b) {
    x = long(rng() % 500);
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<long> out;
  pram::merge_parallel<long>(m, a, b, out);
  std::vector<long> expect;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expect));
  EXPECT_EQ(out, expect);
}

TEST(MergeStability, TiesGoToFirstList) {
  Machine m(4);
  std::vector<std::pair<long, int>> a{{5, 0}, {7, 0}};
  std::vector<std::pair<long, int>> b{{5, 1}, {7, 1}};
  std::vector<std::pair<long, int>> out;
  pram::merge_parallel<std::pair<long, int>>(
      m, a, b, out,
      [](const auto& x, const auto& y) { return x.first < y.first; });
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].second, 0);
  EXPECT_EQ(out[1].second, 1);
  EXPECT_EQ(out[2].second, 0);
  EXPECT_EQ(out[3].second, 1);
}

TEST(CeilHelpers, PowersAndLogs) {
  EXPECT_EQ(pram::ceil_pow2(1), 1u);
  EXPECT_EQ(pram::ceil_pow2(2), 2u);
  EXPECT_EQ(pram::ceil_pow2(3), 4u);
  EXPECT_EQ(pram::ceil_pow2(1000), 1024u);
  EXPECT_EQ(pram::ceil_log2(1), 0u);
  EXPECT_EQ(pram::ceil_log2(2), 1u);
  EXPECT_EQ(pram::ceil_log2(3), 2u);
  EXPECT_EQ(pram::ceil_log2(1024), 10u);
  EXPECT_EQ(pram::ceil_log2(1025), 11u);
}

}  // namespace
