#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using coop::Params;

TEST(Params, AlphaSolvesDefiningEquation) {
  for (std::uint32_t b : {2u, 3u, 4u, 7u, 10u}) {
    const Params p(b);
    const double base = 2.0 * double(2 * b + 1) * double(2 * b + 1);
    EXPECT_NEAR(std::pow(base, p.alpha), 2.0, 1e-9) << "b=" << b;
    EXPECT_GT(p.alpha, 0.0);
    EXPECT_LT(p.alpha, 0.25);  // paper: alpha < 0.25 follows from b >= 1
  }
}

TEST(Params, HIsMonotoneAndClamped) {
  const Params p(4);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < 12; ++i) {
    const auto h = p.h(i);
    EXPECT_GE(h, 1u);
    EXPECT_GE(h, prev);
    prev = h;
  }
  // For large i, h ~ alpha * 2^i (until the safety clamp at 60).
  EXPECT_NEAR(double(p.h(8)), p.alpha * 256.0, 2.0);
  EXPECT_EQ(p.h(20), 60u);
}

TEST(Params, SMatchesFormula) {
  const Params p(4);
  for (std::uint32_t i = 0; i < 6; ++i) {
    const auto h = p.h(i);
    double expect = (2.0 * 4 + 2);
    for (std::uint32_t l = 0; l < h; ++l) {
      expect *= (2.0 * 4 + 1);
    }
    EXPECT_EQ(double(p.s(i)), expect) << "i=" << i;
  }
}

TEST(Params, SSaturatesInsteadOfOverflowing) {
  const Params p(10);
  EXPECT_GT(p.s(40), 0u);  // huge but defined
}

TEST(Params, QAndRFormulas) {
  const Params p(4);
  // q_l = ((2b+1)^l - 1)/2, r_l = (s_i - 1)(2b+1)^l.
  EXPECT_EQ(p.q(0), 0u);
  EXPECT_EQ(p.q(1), 4u);
  EXPECT_EQ(p.q(2), 40u);
  EXPECT_EQ(p.r(0, 1), (p.s(0) - 1) * 9);
}

TEST(Params, SubstructureCount) {
  EXPECT_EQ(Params::substructure_count(4), 1u);
  EXPECT_EQ(Params::substructure_count(16), 2u);
  EXPECT_EQ(Params::substructure_count(17), 3u);
  EXPECT_EQ(Params::substructure_count(1 << 16), 4u);
  EXPECT_EQ(Params::substructure_count(std::size_t(1) << 20), 5u);
}

TEST(Params, SubstructureForProcessorRanges) {
  // T_i serves 2^{2^i} < p <= 2^{2^{i+1}}.
  const std::uint32_t count = 5;
  EXPECT_EQ(Params::substructure_for(1, count), 0u);
  EXPECT_EQ(Params::substructure_for(2, count), 0u);
  EXPECT_EQ(Params::substructure_for(4, count), 0u);
  EXPECT_EQ(Params::substructure_for(5, count), 1u);
  EXPECT_EQ(Params::substructure_for(16, count), 1u);
  EXPECT_EQ(Params::substructure_for(17, count), 2u);
  EXPECT_EQ(Params::substructure_for(256, count), 2u);
  EXPECT_EQ(Params::substructure_for(257, count), 3u);
  EXPECT_EQ(Params::substructure_for(65536, count), 3u);
  EXPECT_EQ(Params::substructure_for(65537, count), 4u);
  // Clamped to the largest built substructure.
  EXPECT_EQ(Params::substructure_for(std::size_t(1) << 40, count), count - 1);
}

TEST(Params, TruncationLevels) {
  // trunc_i = ceil((1 - 2^-i) * height), with a floor of 1 for i = 0.
  EXPECT_EQ(Params::truncation_level(0, 20), 1u);
  EXPECT_EQ(Params::truncation_level(1, 20), 10u);
  EXPECT_EQ(Params::truncation_level(2, 20), 15u);
  EXPECT_EQ(Params::truncation_level(3, 20), 18u);
  EXPECT_EQ(Params::truncation_level(10, 20), 20u);
  EXPECT_EQ(Params::truncation_level(0, 0), 0u);
}

TEST(Params, TruncationCoversMoreWithLargerI) {
  for (std::uint32_t height : {5u, 31u, 100u}) {
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      const auto lvl = Params::truncation_level(i, height);
      EXPECT_GE(lvl, prev);
      EXPECT_LE(lvl, height);
      prev = lvl;
    }
  }
}

}  // namespace
