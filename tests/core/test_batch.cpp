#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using coop::BatchQuery;
using coop::CoopStructure;

TEST(Batch, ResultsMatchPerQuerySearch) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(7, 5000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<BatchQuery> queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back(BatchQuery{test_helpers::random_root_leaf_path(t, rng),
                                 test_helpers::random_query(t, rng)});
  }
  pram::Machine m(256);
  const auto batch = coop::coop_search_batch(cs, m, queries);
  ASSERT_EQ(batch.results.size(), queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
      ASSERT_EQ(batch.results[qi].proper_index[i],
                test_helpers::brute_find(t, queries[qi].path[i],
                                         queries[qi].y))
          << "query " << qi << " node " << i;
    }
  }
}

TEST(Batch, OneRoundWhenQueriesFitTheMachine) {
  std::mt19937_64 rng(2);
  const auto t = cat::make_balanced_binary(5, 500, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<BatchQuery> queries(8);
  for (auto& q : queries) {
    q.path = test_helpers::random_root_leaf_path(t, rng);
    q.y = test_helpers::random_query(t, rng);
  }
  pram::Machine m(64);
  const auto batch = coop::coop_search_batch(cs, m, queries);
  EXPECT_EQ(batch.rounds, 1u);
  EXPECT_EQ(batch.procs_per_query, 8u);
}

TEST(Batch, MultipleRoundsWhenOversubscribed) {
  std::mt19937_64 rng(3);
  const auto t = cat::make_balanced_binary(5, 500, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<BatchQuery> queries(10);
  for (auto& q : queries) {
    q.path = test_helpers::random_root_leaf_path(t, rng);
    q.y = 42;
  }
  pram::Machine m(4);
  const auto batch = coop::coop_search_batch(cs, m, queries, /*per query=*/2);
  EXPECT_EQ(batch.rounds, 5u);  // groups of 2
}

TEST(Batch, ThroughputBeatsSerialExecution) {
  // Total charged time for Q queries with p processors must be well below
  // Q * (time of one query with p processors).
  std::mt19937_64 rng(4);
  const auto t =
      cat::make_balanced_binary(10, 100000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<BatchQuery> queries(64);
  for (auto& q : queries) {
    q.path = test_helpers::random_root_leaf_path(t, rng);
    q.y = test_helpers::random_query(t, rng);
  }
  std::uint64_t serial = 0;
  {
    pram::Machine m(256);
    for (const auto& q : queries) {
      (void)coop::coop_search_explicit(cs, m, q.path, q.y);
    }
    serial = m.stats().steps;
  }
  std::uint64_t batched = 0;
  {
    pram::Machine m(256);
    (void)coop::coop_search_batch(cs, m, queries);
    batched = m.stats().steps;
  }
  EXPECT_LT(batched * 4, serial);
}

TEST(Batch, OversubscribedDefaultSharePacksWholeRounds) {
  // Regression: with Q > p the default share degenerates to one processor
  // per query; the batch must still round-robin whole p-sized rounds —
  // rounds == ceil(Q / p) — and answers must match the oracle.
  std::mt19937_64 rng(6);
  const auto t = cat::make_balanced_binary(6, 2000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<BatchQuery> queries(100);
  for (auto& q : queries) {
    q.path = test_helpers::random_root_leaf_path(t, rng);
    q.y = test_helpers::random_query(t, rng);
  }
  pram::Machine m(8);
  const auto batch = coop::coop_search_batch(cs, m, queries);
  EXPECT_EQ(batch.procs_per_query, 1u);
  EXPECT_EQ(batch.rounds, (queries.size() + 7) / 8);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
      ASSERT_EQ(batch.results[qi].proper_index[i],
                test_helpers::brute_find(t, queries[qi].path[i],
                                         queries[qi].y));
    }
  }
}

TEST(Batch, EmptyBatch) {
  std::mt19937_64 rng(5);
  const auto t = cat::make_balanced_binary(3, 50, CatalogShape::kUniform, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(8);
  const auto batch = coop::coop_search_batch(cs, m, {});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.rounds, 0u);
  EXPECT_EQ(m.stats().steps, 0u);
}

}  // namespace
