#include "core/implicit_search.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using cat::NodeId;
using coop::CoopStructure;

/// Assign BST split keys by inorder position (so "branch left iff
/// x <= split(v)" satisfies the consistency assumption).
std::vector<cat::Key> bst_splits(const cat::Tree& t) {
  std::vector<cat::Key> split(t.num_nodes());
  std::vector<NodeId> inorder;
  std::vector<std::pair<NodeId, int>> stack{{t.root(), 0}};
  while (!stack.empty()) {
    auto& [v, state] = stack.back();
    if (state == 0) {
      state = 1;
      if (!t.is_leaf(v)) {
        stack.push_back({t.children(v)[0], 0});
        continue;
      }
    }
    if (state == 1) {
      inorder.push_back(v);
      state = 2;
      if (!t.is_leaf(v)) {
        stack.push_back({t.children(v)[1], 0});
        continue;
      }
    }
    stack.pop_back();
  }
  for (std::size_t i = 0; i < inorder.size(); ++i) {
    split[inorder[i]] = cat::Key(i) * 100;
  }
  return split;
}

struct Case {
  std::uint32_t height;
  std::size_t entries;
  CatalogShape shape;
  std::size_t p;
  std::uint64_t seed;
};

class ImplicitParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImplicitParam,
    ::testing::Values(Case{1, 20, CatalogShape::kUniform, 4, 1},
                      Case{4, 500, CatalogShape::kRandom, 2, 2},
                      Case{4, 500, CatalogShape::kRandom, 32, 3},
                      Case{6, 5000, CatalogShape::kSkewed, 8, 4},
                      Case{6, 5000, CatalogShape::kRootHeavy, 128, 5},
                      Case{8, 40000, CatalogShape::kLeafHeavy, 512, 6},
                      Case{8, 40000, CatalogShape::kRandom, 4096, 7}));

TEST_P(ImplicitParam, FollowsBstPathAndFindsMatchBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const auto split = bst_splits(t);
  pram::Machine m(c.p);
  for (int trial = 0; trial < 50; ++trial) {
    const cat::Key x = cat::Key(rng() % (t.num_nodes() * 100));
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto branch = [&](NodeId v, std::size_t) -> std::uint32_t {
      return x <= split[v] ? 0 : 1;
    };
    const auto r = coop::coop_search_implicit(cs, m, y, branch);
    // Expected BST path.
    NodeId v = t.root();
    ASSERT_EQ(r.path.size(), t.height() + 1);
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      ASSERT_EQ(r.path[i], v) << "trial " << trial << " depth " << i;
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, v, y));
      if (!t.is_leaf(v)) {
        v = t.children(v)[x <= split[v] ? 0 : 1];
      }
    }
  }
}

TEST_P(ImplicitParam, AgreesWithSequentialImplicitSearch) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 40);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const auto split = bst_splits(t);
  pram::Machine m(c.p);
  for (int trial = 0; trial < 30; ++trial) {
    const cat::Key x = cat::Key(rng() % (t.num_nodes() * 100));
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto branch = [&](NodeId v, std::size_t) -> std::uint32_t {
      return x <= split[v] ? 0 : 1;
    };
    const auto coop_r = coop::coop_search_implicit(cs, m, y, branch);
    const auto seq_r = fc::search_implicit(s, y, branch);
    ASSERT_EQ(coop_r.path, seq_r.path);
    ASSERT_EQ(coop_r.proper_index, seq_r.proper_index);
  }
}

TEST(Implicit, ExtremeBranchesReachOuterLeaves) {
  std::mt19937_64 rng(11);
  const auto t = cat::make_balanced_binary(7, 2000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(64);
  const auto all_left = [](NodeId, std::size_t) -> std::uint32_t { return 0; };
  const auto all_right = [](NodeId, std::size_t) -> std::uint32_t { return 1; };
  const auto rl = coop::coop_search_implicit(cs, m, 42, all_left);
  const auto rr = coop::coop_search_implicit(cs, m, 42, all_right);
  // Leftmost / rightmost leaves.
  NodeId v = t.root();
  while (!t.is_leaf(v)) {
    v = t.children(v)[0];
  }
  EXPECT_EQ(rl.path.back(), v);
  v = t.root();
  while (!t.is_leaf(v)) {
    v = t.children(v)[1];
  }
  EXPECT_EQ(rr.path.back(), v);
}

TEST(Implicit, CustomResolverSeesWholeBlock) {
  // A resolver that counts how many nodes it was shown per hop and then
  // behaves like all-left; block sizes must match the substructure h.
  std::mt19937_64 rng(12);
  const auto t = cat::make_balanced_binary(8, 30000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(1 << 10);
  std::vector<std::size_t> block_sizes;
  const coop::HopResolver resolver =
      [&](pram::Machine& mm, const coop::HopView& view,
          std::span<std::uint8_t> out) {
        block_sizes.push_back(view.block->nodes.size());
        mm.exec(out.size(), [&](std::size_t z) { out[z] = 0; });
      };
  const auto seq = [](NodeId, std::size_t) -> std::uint32_t { return 0; };
  const auto r = coop::coop_search_implicit_custom(cs, m, 7, resolver, seq);
  const auto& sub = cs.substructure(r.substructure_used);
  ASSERT_EQ(block_sizes.size(), r.hops);
  for (std::size_t i = 0; i + 1 < block_sizes.size(); ++i) {
    EXPECT_EQ(block_sizes[i], (std::size_t(1) << (sub.h + 1)) - 1);
  }
}

TEST(Implicit, StepsDecreaseWithMoreProcessors) {
  std::mt19937_64 rng(13);
  const auto t =
      cat::make_balanced_binary(12, 300000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const auto split = bst_splits(t);
  const cat::Key x = cat::Key(t.num_nodes() * 50);
  const auto branch = [&](NodeId v, std::size_t) -> std::uint32_t {
    return x <= split[v] ? 0 : 1;
  };
  std::uint64_t steps_small = 0, steps_big = 0;
  {
    pram::Machine m(4);
    (void)coop::coop_search_implicit(cs, m, 999, branch);
    steps_small = m.stats().steps;
  }
  {
    pram::Machine m(1 << 16);
    (void)coop::coop_search_implicit(cs, m, 999, branch);
    steps_big = m.stats().steps;
  }
  EXPECT_LT(steps_big, steps_small);
}

}  // namespace
