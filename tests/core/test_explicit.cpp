#include "core/explicit_search.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using coop::CoopStructure;

struct Case {
  std::uint32_t height;
  std::size_t entries;
  CatalogShape shape;
  std::size_t p;
  std::uint64_t seed;
};

class ExplicitParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExplicitParam,
    ::testing::Values(Case{0, 10, CatalogShape::kUniform, 4, 1},
                      Case{3, 100, CatalogShape::kRandom, 1, 2},
                      Case{3, 100, CatalogShape::kRandom, 8, 3},
                      Case{6, 3000, CatalogShape::kUniform, 2, 4},
                      Case{6, 3000, CatalogShape::kSkewed, 16, 5},
                      Case{6, 3000, CatalogShape::kRootHeavy, 64, 6},
                      Case{8, 30000, CatalogShape::kLeafHeavy, 256, 7},
                      Case{8, 30000, CatalogShape::kRandom, 1024, 8},
                      Case{10, 100000, CatalogShape::kSkewed, 4096, 9}));

TEST_P(ExplicitParam, MatchesBruteForceOnRandomPaths) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(c.p);
  for (int trial = 0; trial < 60; ++trial) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    ASSERT_EQ(r.proper_index.size(), path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y))
          << "trial " << trial << " node " << path[i] << " y=" << y;
    }
  }
}

TEST_P(ExplicitParam, Lemma3ProcessorRangesCoverTrueFind) {
  // The asserts inside the search already verify Lemma 3; run a batch of
  // adversarial queries (exact keys and off-by-one values).
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 50);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(c.p);
  for (int trial = 0; trial < 40; ++trial) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    for (const cat::Key y : {cat::Key(0), cat::Key(999'999'999),
                             test_helpers::random_query(t, rng)}) {
      const auto r = coop::coop_search_explicit(cs, m, path, y);
      for (std::size_t i = 0; i < path.size(); ++i) {
        ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y));
      }
    }
  }
}

TEST_P(ExplicitParam, UsesTheRightSubstructure) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 99);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(c.p);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  const auto r = coop::coop_search_explicit(cs, m, path, 42);
  EXPECT_EQ(r.substructure_used,
            coop::Params::substructure_for(c.p, cs.substructure_count()));
}

TEST(Explicit, StepsDecreaseWithMoreProcessors) {
  std::mt19937_64 rng(123);
  const auto t =
      cat::make_balanced_binary(12, 500000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  const cat::Key y = 314159265;
  std::uint64_t steps_small = 0, steps_big = 0;
  {
    pram::Machine m(4);
    (void)coop::coop_search_explicit(cs, m, path, y);
    steps_small = m.stats().steps;
  }
  {
    pram::Machine m(1 << 16);
    (void)coop::coop_search_explicit(cs, m, path, y);
    steps_big = m.stats().steps;
  }
  EXPECT_LT(steps_big, steps_small);
}

TEST(Explicit, HopCountMatchesTruncationGeometry) {
  std::mt19937_64 rng(321);
  const auto t =
      cat::make_balanced_binary(10, 100000, CatalogShape::kUniform, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  for (std::size_t p : {2, 16, 1024}) {
    pram::Machine m(p);
    const auto r = coop::coop_search_explicit(cs, m, path, 5555);
    const auto& sub = cs.substructure(r.substructure_used);
    // hops == ceil(trunc / h); tail == height - trunc.
    EXPECT_EQ(r.hops, (sub.trunc_level + sub.h - 1) / sub.h);
    EXPECT_EQ(r.sequential_tail, t.height() - sub.trunc_level);
  }
}

TEST(Explicit, SegmentSearchFromMidTree) {
  std::mt19937_64 rng(555);
  const auto t =
      cat::make_balanced_binary(8, 20000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(64);
  for (int trial = 0; trial < 100; ++trial) {
    const auto chain = test_helpers::random_chain(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto r = coop::coop_search_segment(cs, m, chain, y);
    ASSERT_EQ(r.proper_index.size(), chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, chain[i], y));
    }
  }
}

TEST(Explicit, ChooseSampleFindsNextBackSample) {
  std::mt19937_64 rng(777);
  const auto t = cat::make_balanced_binary(6, 5000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const auto& sub = cs.substructure(0);
  const auto& block = sub.blocks[0];
  const std::size_t tsize = s.aug(block.root).size();
  pram::Machine m(8);
  for (std::size_t pos = 0; pos < tsize; pos += 7) {
    const auto choice = coop::detail::choose_sample(m, block, tsize, sub.s, pos);
    EXPECT_GE(choice.position, pos);
    EXPECT_LT(choice.position - pos, sub.s);
    EXPECT_EQ((tsize - 1 - choice.position) % sub.s, 0u);
    EXPECT_EQ(static_cast<std::size_t>(block.skel_at(choice.j, 0)),
              choice.position);
  }
}

}  // namespace
