#include "core/general_tree.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using cat::NodeId;
using coop::CoopStructure;

TEST(GeneralTree, LongPathMatchesBruteForce) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_path_tree(500, 5000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<NodeId> path(t.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    path[i] = NodeId(i);
  }
  pram::Machine m(64);
  for (int trial = 0; trial < 20; ++trial) {
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto r = coop::coop_search_long_path(cs, m, path, y);
    ASSERT_EQ(r.proper_index.size(), path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y))
          << "node " << i;
    }
  }
}

TEST(GeneralTree, ChargedTimeScalesWithPathOverP) {
  std::mt19937_64 rng(2);
  const auto t = cat::make_path_tree(4096, 40960, CatalogShape::kUniform, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<NodeId> path(t.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    path[i] = NodeId(i);
  }
  std::uint64_t steps_small = 0, steps_big = 0;
  {
    pram::Machine m(16);
    (void)coop::coop_search_long_path(cs, m, path, 5, 0.5);
    steps_small = m.stats().steps;
  }
  {
    pram::Machine m(4096);
    (void)coop::coop_search_long_path(cs, m, path, 5, 0.5);
    steps_big = m.stats().steps;
  }
  // Theorem 2: k/(p^{1-eps} log p) dominates on long paths; more
  // processors must help substantially.
  EXPECT_LT(steps_big * 4, steps_small);
}

TEST(GeneralTree, GroupsAndSubpathsAccounting) {
  std::mt19937_64 rng(3);
  const auto t = cat::make_path_tree(1000, 10000, CatalogShape::kUniform, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<NodeId> path(t.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    path[i] = NodeId(i);
  }
  pram::Machine m(256);
  const auto r = coop::coop_search_long_path(cs, m, path, 7, 0.5);
  const std::size_t logn = static_cast<std::size_t>(
      std::ceil(std::log2(double(t.total_catalog_size()))));
  EXPECT_EQ(r.subpaths, (path.size() + logn - 1) / logn);
  EXPECT_GE(r.groups, 1u);
  EXPECT_LE(r.groups, r.subpaths);
  EXPECT_EQ(m.stats().steps, r.charged_steps);
}

TEST(GeneralTree, EpsilonOneIsPurelySequentialGroups) {
  // eps = 1: every subpath gets all p processors, groups of size ~1.
  std::mt19937_64 rng(4);
  const auto t = cat::make_path_tree(300, 3000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::vector<NodeId> path(t.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    path[i] = NodeId(i);
  }
  pram::Machine m(64);
  const auto r = coop::coop_search_long_path(cs, m, path, 9, 1.0);
  EXPECT_EQ(r.groups, r.subpaths);
  for (std::size_t i = 0; i < path.size(); ++i) {
    ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], 9));
  }
}

TEST(GeneralTree, BinarizedSearchOnHighDegreeTree) {
  std::mt19937_64 rng(5);
  const auto t = cat::make_random_tree(200, 6, 3000, CatalogShape::kRandom, rng);
  std::vector<NodeId> orig;
  const auto b = cat::binarize(t, orig);
  const auto s = fc::Structure::build(b);
  const auto cs = CoopStructure::build(s);
  pram::Machine m(64);
  for (int trial = 0; trial < 50; ++trial) {
    // Random root-to-leaf path in the ORIGINAL tree.
    std::vector<NodeId> path{t.root()};
    while (!t.is_leaf(path.back())) {
      const auto kids = t.children(path.back());
      path.push_back(kids[rng() % kids.size()]);
    }
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto lifted = coop::lift_path_to_binarized(t, b, orig, path);
    // The lifted path must be a valid chain in the binarized tree.
    for (std::size_t i = 1; i < lifted.size(); ++i) {
      ASSERT_EQ(b.parent(lifted[i]), lifted[i - 1]);
    }
    const auto r = coop::coop_search_segment(cs, m, lifted, y);
    const auto projected = coop::project_from_binarized(r, orig);
    ASSERT_EQ(projected.path.size(), path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(projected.path[i], path[i]);
      ASSERT_EQ(projected.proper_index[i],
                test_helpers::brute_find(t, path[i], y));
    }
  }
}

TEST(GeneralTree, LiftedPathLengthBoundedByLogD) {
  // Theorem 3: binarization stretches each edge by <= ceil(log2 d) + O(1)
  // in balanced expansions; our caterpillar gives <= d - 1, which is the
  // simple bound we assert (the log d variant is an optimization noted in
  // DESIGN.md).
  std::mt19937_64 rng(6);
  const std::size_t d = 8;
  const auto t = cat::make_random_tree(100, d, 500, CatalogShape::kRandom, rng);
  std::vector<NodeId> orig;
  const auto b = cat::binarize(t, orig);
  std::vector<NodeId> path{t.root()};
  while (!t.is_leaf(path.back())) {
    const auto kids = t.children(path.back());
    path.push_back(kids.back());  // worst case: last child
  }
  const auto lifted = coop::lift_path_to_binarized(t, b, orig, path);
  EXPECT_LE(lifted.size(), path.size() * d);
}

}  // namespace
