#include "core/structure.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using coop::CoopStructure;

struct Case {
  std::uint32_t height;
  std::size_t entries;
  CatalogShape shape;
  std::uint64_t seed;
};

class StructureParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, StructureParam,
    ::testing::Values(Case{1, 10, CatalogShape::kUniform, 1},
                      Case{4, 200, CatalogShape::kRandom, 2},
                      Case{6, 3000, CatalogShape::kSkewed, 3},
                      Case{8, 20000, CatalogShape::kRootHeavy, 4},
                      Case{8, 20000, CatalogShape::kLeafHeavy, 5},
                      Case{10, 100000, CatalogShape::kRandom, 6}));

TEST_P(StructureParam, BlocksPartitionTruncatedLevels) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    const auto& sub = cs.substructure(i);
    // Every node at a level that is a multiple of h below trunc roots a
    // block; block levels tile [0, trunc].
    std::vector<int> covered(sub.trunc_level + 1, 0);
    for (const auto& b : sub.blocks) {
      const auto rho = t.depth(b.root);
      EXPECT_EQ(rho % sub.h, 0u);
      EXPECT_LT(rho, sub.trunc_level);
      for (std::uint32_t l = 0; l <= b.height; ++l) {
        covered[rho + l] = 1;
      }
      // Block nodes count: complete binary subtree of its height.
      EXPECT_EQ(b.nodes.size(), (std::size_t(1) << (b.height + 1)) - 1);
      EXPECT_EQ(b.inorder.size(), b.nodes.size());
    }
    for (std::uint32_t l = 0; l <= sub.trunc_level; ++l) {
      EXPECT_EQ(covered[l], 1) << "level " << l << " uncovered in T_" << i;
    }
  }
}

TEST_P(StructureParam, Lemma1SkeletonKeysDistinct) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 10);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    for (const auto& b : cs.substructure(i).blocks) {
      for (std::size_t z = 0; z < b.nodes.size(); ++z) {
        std::set<std::int32_t> seen;
        for (std::size_t j = 0; j < b.m; ++j) {
          EXPECT_TRUE(seen.insert(b.skel_at(j, z)).second)
              << "Lemma 1 violated: duplicate key position at block node "
              << z << " trees " << b.m << " T_" << i;
        }
      }
    }
  }
}

TEST_P(StructureParam, Lemma2LinearTotalSpace) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 20);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  const std::size_t input = t.total_catalog_size() + t.num_nodes();
  // Lemma 2: total skeleton storage O(n).  The constant absorbs the
  // per-block sparse roots (one tree per block minimum).
  EXPECT_LE(cs.total_skeleton_entries(), 16 * input + 64)
      << "height " << c.height;
}

TEST_P(StructureParam, SkeletonKeysFollowBridges) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 30);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    for (const auto& b : cs.substructure(i).blocks) {
      for (std::size_t z = 1; z < b.nodes.size(); ++z) {
        const auto zp = static_cast<std::size_t>(b.parent_local[z]);
        const auto slot =
            static_cast<std::uint32_t>(t.child_slot(b.nodes[z]));
        for (std::size_t j = 0; j < b.m; ++j) {
          const auto expect = s.aug(b.nodes[zp]).bridge_at(
              slot, static_cast<std::size_t>(b.skel_at(j, zp)));
          EXPECT_EQ(b.skel_at(j, z), expect);
        }
      }
    }
  }
}

TEST(Structure, RootSamplesAreBackSamplesAtSpacingS) {
  std::mt19937_64 rng(7);
  const auto t = cat::make_balanced_binary(6, 5000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    const auto& sub = cs.substructure(i);
    for (const auto& b : sub.blocks) {
      const std::size_t tsize = s.aug(b.root).size();
      EXPECT_EQ(b.m, (tsize + sub.s - 1) / sub.s);
      // Last skeleton root is the +infinity terminal.
      EXPECT_EQ(static_cast<std::size_t>(b.skel_at(b.m - 1, 0)), tsize - 1);
      for (std::size_t j = 0; j + 1 < b.m; ++j) {
        EXPECT_EQ(b.skel_at(j + 1, 0) - b.skel_at(j, 0),
                  static_cast<std::int32_t>(sub.s));
      }
    }
  }
}

TEST(Structure, BuildSubsetBuildsOnlyRequested) {
  std::mt19937_64 rng(8);
  const auto t = cat::make_balanced_binary(8, 30000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const std::vector<std::uint32_t> want{2};
  const auto cs = CoopStructure::build_subset(s, want);
  ASSERT_EQ(cs.substructure_count(), 1u);
  EXPECT_EQ(cs.substructure(0).i, 2u);
}

TEST(Structure, ParallelStep2MatchesSequentialBuild) {
  std::mt19937_64 rng(77);
  const auto t = cat::make_balanced_binary(9, 40000,
                                           CatalogShape::kSkewed, rng);
  const auto s = fc::Structure::build(t);
  const auto seq = CoopStructure::build(s);
  pram::Machine m(256);
  const auto par = CoopStructure::build_parallel(s, m);
  ASSERT_EQ(seq.substructure_count(), par.substructure_count());
  for (std::uint32_t i = 0; i < seq.substructure_count(); ++i) {
    const auto& a = seq.substructure(i);
    const auto& b = par.substructure(i);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    ASSERT_EQ(a.skeleton_entries, b.skeleton_entries);
    for (std::size_t k = 0; k < a.blocks.size(); ++k) {
      ASSERT_EQ(a.blocks[k].m, b.blocks[k].m);
      ASSERT_EQ(a.blocks[k].skel, b.blocks[k].skel) << "T_" << i;
    }
  }
  EXPECT_GT(m.stats().work, 0u);
}

TEST(Structure, ParallelStep2DepthIsLogarithmic) {
  std::mt19937_64 rng(78);
  std::uint64_t prev = 0;
  for (std::uint32_t h : {8u, 10u, 12u}) {
    const std::size_t n = std::size_t(1) << (h + 4);
    const auto t = cat::make_balanced_binary(h, n, CatalogShape::kRandom, rng);
    const auto s = fc::Structure::build(t);
    pram::Machine m(std::max<std::size_t>(1, n / h));  // n / log n procs
    (void)CoopStructure::build_parallel(s, m);
    const double logn = std::log2(double(n));
    // Depth: per substructure ~trunc/h levels... bounded by a modest
    // multiple of log n across all substructures.
    EXPECT_LE(double(m.stats().steps), 12.0 * logn) << "h=" << h;
    EXPECT_GE(m.stats().steps, prev);
    prev = m.stats().steps;
  }
}

TEST(Structure, SpaceDecaysGeometricallyAcrossSubstructures) {
  // Lemma 2's mechanism: the truncation keeps the total near the largest
  // substructure.  Check that the per-i sizes do not blow up the sum.
  std::mt19937_64 rng(9);
  const auto t =
      cat::make_balanced_binary(12, 200000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = CoopStructure::build(s);
  std::size_t largest = 0;
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    largest = std::max(largest, cs.substructure(i).skeleton_entries);
  }
  EXPECT_LE(cs.total_skeleton_entries(), 4 * largest + 64);
}

}  // namespace
