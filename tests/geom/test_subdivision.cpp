#include "geom/subdivision.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geom/generators.hpp"

namespace {

using geom::MonotoneSubdivision;
using geom::Point;
using geom::SubEdge;

TEST(Primitives, Orientation) {
  const Point a{0, 0}, b{0, 10};
  EXPECT_EQ(geom::orientation(a, b, Point{-5, 5}), 1);   // left
  EXPECT_EQ(geom::orientation(a, b, Point{5, 5}), -1);   // right
  EXPECT_EQ(geom::orientation(a, b, Point{0, 7}), 0);    // on
  const Point c{10, 10};
  EXPECT_EQ(geom::orientation(a, c, Point{0, 10}), 1);
  EXPECT_EQ(geom::orientation(a, c, Point{10, 0}), -1);
}

TEST(SubEdge, SpansAndSide) {
  SubEdge e;
  e.lo = Point{100, 0};
  e.hi = Point{200, 1000};
  e.min_sep = 1;
  e.max_sep = 3;
  EXPECT_TRUE(e.spans(500));
  EXPECT_FALSE(e.spans(0));
  EXPECT_FALSE(e.spans(1000));
  EXPECT_EQ(e.side(Point{0, 500}), 1);
  EXPECT_EQ(e.side(Point{1000, 500}), -1);
  EXPECT_EQ(e.left_region(), 0);
  EXPECT_EQ(e.right_region(), 3);
}

class GeneratorParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(2, 1),
                      std::make_pair<std::size_t, std::size_t>(2, 5),
                      std::make_pair<std::size_t, std::size_t>(8, 4),
                      std::make_pair<std::size_t, std::size_t>(16, 16),
                      std::make_pair<std::size_t, std::size_t>(64, 10),
                      std::make_pair<std::size_t, std::size_t>(100, 30)));

TEST_P(GeneratorParam, RandomMonotoneIsValid) {
  const auto [regions, bands] = GetParam();
  std::mt19937_64 rng(regions * 100 + bands);
  const auto s = geom::make_random_monotone(regions, bands, rng);
  EXPECT_EQ(s.num_regions, regions);
  EXPECT_EQ(s.validate(), "");
}

TEST_P(GeneratorParam, SlabsAreValid) {
  const auto [regions, bands] = GetParam();
  const auto s = geom::make_slabs(regions, bands);
  EXPECT_EQ(s.validate(), "");
  // Slabs never share edges: every edge covers exactly one separator.
  for (const auto& e : s.edges) {
    EXPECT_EQ(e.min_sep, e.max_sep);
  }
}

TEST_P(GeneratorParam, QueriesAvoidEdgesAndLevels) {
  const auto [regions, bands] = GetParam();
  std::mt19937_64 rng(regions * 7 + bands);
  const auto s = geom::make_random_monotone(regions, bands, rng);
  for (int t = 0; t < 50; ++t) {
    const Point q = geom::random_query_point(s, rng);
    EXPECT_GT(q.y, s.ymin);
    EXPECT_LT(q.y, s.ymax);
    EXPECT_EQ(q.y % 2, 1);  // odd: never a vertex level
    for (const auto& e : s.edges) {
      if (e.spans(q.y)) {
        EXPECT_NE(e.side(q), 0);
      }
    }
  }
}

TEST_P(GeneratorParam, JaggedIsValid) {
  const auto [regions, verts] = GetParam();
  std::mt19937_64 rng(regions * 13 + verts);
  const auto s = geom::make_jagged(regions, verts, rng);
  EXPECT_EQ(s.num_regions, regions);
  EXPECT_EQ(s.validate(), "");
  // No shared edges by construction.
  for (const auto& e : s.edges) {
    EXPECT_EQ(e.min_sep, e.max_sep);
  }
}

TEST(Generator, JaggedChainsHaveDistinctVertexLevels) {
  std::mt19937_64 rng(99);
  const auto s = geom::make_jagged(8, 12, rng);
  // At least some slanted edges (x changes across an edge).
  bool slanted = false;
  for (const auto& e : s.edges) {
    if (e.lo.x != e.hi.x) {
      slanted = true;
      break;
    }
  }
  EXPECT_TRUE(slanted);
}

TEST(Generator, SharedEdgesActuallyOccur) {
  std::mt19937_64 rng(42);
  const auto s = geom::make_random_monotone(40, 20, rng);
  bool shared = false;
  for (const auto& e : s.edges) {
    if (e.max_sep > e.min_sep) {
      shared = true;
      break;
    }
  }
  EXPECT_TRUE(shared) << "generator should produce chain-shared edges";
}

TEST(LocateBrute, SlabsGroundTruth) {
  const auto s = geom::make_slabs(5, 2);
  // Slab boundaries at x = 2000, 4000, 6000, 8000.
  EXPECT_EQ(s.locate_brute(Point{100, 501}), 0u);
  EXPECT_EQ(s.locate_brute(Point{2100, 501}), 1u);
  EXPECT_EQ(s.locate_brute(Point{5999, 501}), 2u);
  EXPECT_EQ(s.locate_brute(Point{6001, 501}), 3u);
  EXPECT_EQ(s.locate_brute(Point{9001, 501}), 4u);
}

TEST(TerrainComplex, BruteLocateOrdersCells) {
  std::mt19937_64 rng(7);
  const auto c = geom::make_terrain_complex(4, 8, 3, rng);
  EXPECT_EQ(c.num_cells(), 5u);
  EXPECT_EQ(c.footprint.validate(), "");
  // Very low and very high probes.
  const auto q2 = geom::random_query_point(c.footprint, rng);
  EXPECT_EQ(c.locate_brute(geom::Point3{q2.x, q2.y, 1}), 0u);
  EXPECT_EQ(c.locate_brute(geom::Point3{q2.x, q2.y, 1'000'001}),
            c.num_surfaces);
  // Monotone in z.
  std::size_t prev = 0;
  for (geom::Coord z = 1; z < 7000; z += 100) {
    const auto cell = c.locate_brute(geom::Point3{q2.x, q2.y, z | 1});
    EXPECT_GE(cell, prev);
    prev = cell;
  }
}

TEST(TerrainComplex, HeightsStrictlyIncreasing) {
  std::mt19937_64 rng(8);
  const auto c = geom::make_terrain_complex(6, 10, 4, rng);
  for (std::size_t r = 0; r < c.footprint_regions; ++r) {
    for (std::size_t s = 1; s < c.num_surfaces; ++s) {
      EXPECT_LT(c.z[s - 1][r], c.z[s][r]);
    }
  }
}

}  // namespace
