// Determinism of the observability layer (DESIGN.md §10): two runs of
// the same seeded workload must produce identical counter deltas and
// identical trace emission counts.  This is what makes a metrics dump
// from a replayed incident comparable to the dump captured live.
//
// The workload drives the real instrumented stack — Frontend over
// QueryEngine over a published snapshot — with seeded once-per-batch
// worker faults and sleep-free backoff, so every count (admissions,
// retries, degradations, shard claims, trace events) is a pure function
// of the seed.  Values that measure *time* (histogram sums) are
// excluded; event counts are not.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "fc/build.hpp"
#include "helpers.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/frontend.hpp"
#include "snapshot/registry.hpp"

namespace {

using serve::ChaosHooks;
using serve::Frontend;
using serve::FrontendOptions;
using serve::PathAnswer;
using serve::PathQuery;
using serve::QueryEngine;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Fixture {
  cat::Tree tree;
  snapshot::Registry registry;
  std::vector<PathQuery> queries;

  explicit Fixture(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    tree = cat::make_balanced_binary(6, 4000, cat::CatalogShape::kRandom, rng);
    const auto s = fc::Structure::build_checked(tree);
    EXPECT_TRUE(s.ok());
    auto f = serve::FlatCascade::compile(*s);
    EXPECT_TRUE(f.ok());
    registry.publish(snapshot::Snapshot::in_memory(f.take()));
    queries.resize(64);
    for (auto& q : queries) {
      q.path = test_helpers::random_root_leaf_path(tree, rng);
      q.y = test_helpers::random_query(tree, rng);
    }
  }
};

std::map<std::string, std::uint64_t> counter_map(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> m;
  for (const auto& c : snap.counters) {
    m[c.name] = c.value;
  }
  return m;
}

struct RunResult {
  std::map<std::string, std::uint64_t> counter_deltas;
  std::uint64_t trace_emitted = 0;
  std::map<std::string, std::uint64_t> histogram_count_deltas;
};

/// One seeded pass: 40 batches, every batch whose hash says so suffers
/// exactly one injected worker fault (so it degrades on attempt 1 and
/// retries cleanly).  Returns the global-registry deltas this pass
/// caused.
RunResult run_workload(std::uint64_t seed) {
  Fixture fx(seed);
  const auto before = obs::Registry::global().scrape();
  auto hist_counts = [](const obs::MetricsSnapshot& s) {
    std::map<std::string, std::uint64_t> m;
    for (const auto& h : s.histograms) {
      m[h.name] = h.count;
    }
    return m;
  };
  const auto hist_before = hist_counts(before);
  obs::TraceRing& ring = obs::TraceRing::global();
  ring.configure(seed, /*sample_period=*/2);
  const std::uint64_t trace_before = ring.emitted();

  QueryEngine engine(2);
  FrontendOptions opts;
  opts.sleep_on_backoff = false;
  Frontend frontend(fx.registry, engine, opts);
  for (std::uint64_t b = 0; b < 40; ++b) {
    std::atomic<bool> thrown{false};
    ChaosHooks hooks;
    const ChaosHooks* chaos = nullptr;
    if (splitmix64(seed ^ b) % 5 == 0) {
      hooks.on_item = [&thrown](std::uint64_t, std::size_t) {
        if (!thrown.exchange(true)) {
          throw std::runtime_error("determinism: injected fault");
        }
      };
      chaos = &hooks;
    }
    std::vector<PathAnswer> out;
    const auto st =
        frontend.serve_paths(fx.queries, out, nullptr, nullptr, nullptr,
                             chaos);
    EXPECT_TRUE(st.ok()) << st.to_string();
  }

  RunResult result;
  const auto after = obs::Registry::global().scrape();
  const auto b_map = counter_map(before);
  for (const auto& [name, value] : counter_map(after)) {
    const auto it = b_map.find(name);
    const std::uint64_t prev = it == b_map.end() ? 0 : it->second;
    result.counter_deltas[name] = value - prev;
  }
  const auto hist_after = hist_counts(after);
  for (const auto& [name, value] : hist_after) {
    const auto it = hist_before.find(name);
    const std::uint64_t prev = it == hist_before.end() ? 0 : it->second;
    result.histogram_count_deltas[name] = value - prev;
  }
  result.trace_emitted = ring.emitted() - trace_before;
  return result;
}

TEST(ObsDeterminism, SameSeedSameCounterDeltas) {
  const RunResult a = run_workload(/*seed=*/1234);
  const RunResult b = run_workload(/*seed=*/1234);

  // The workload visibly exercised the instrumented stack.
  EXPECT_EQ(a.counter_deltas.at("serve_frontend_submitted_total"), 40u);
  EXPECT_EQ(a.counter_deltas.at("serve_frontend_completed_total"), 40u);
  EXPECT_GT(a.counter_deltas.at("serve_frontend_retries_total"), 0u);
  EXPECT_GT(a.counter_deltas.at("serve_engine_shard_claims_total"), 0u);
  EXPECT_GT(a.trace_emitted, 0u);

  // Identical deltas, counter by counter.
  ASSERT_EQ(a.counter_deltas.size(), b.counter_deltas.size());
  for (const auto& [name, delta] : a.counter_deltas) {
    ASSERT_TRUE(b.counter_deltas.count(name)) << name;
    EXPECT_EQ(delta, b.counter_deltas.at(name)) << name;
  }
  EXPECT_EQ(a.histogram_count_deltas, b.histogram_count_deltas);
  EXPECT_EQ(a.trace_emitted, b.trace_emitted);
}

TEST(ObsDeterminism, DifferentSeedDiffersSomewhere) {
  const RunResult a = run_workload(/*seed=*/1234);
  const RunResult c = run_workload(/*seed=*/99);
  // Different fault schedules should move at least the retry counter;
  // if by chance they coincide, the trace sampling subset still differs.
  const bool differs =
      a.counter_deltas.at("serve_frontend_retries_total") !=
          c.counter_deltas.at("serve_frontend_retries_total") ||
      a.trace_emitted != c.trace_emitted;
  EXPECT_TRUE(differs);
}

TEST(ObsDeterminism, ExportersAreStableOverTheSameSnapshot) {
  // Same snapshot in, same document out — byte for byte.
  const auto snap = obs::Registry::global().scrape();
  EXPECT_EQ(obs::to_json(snap), obs::to_json(snap));
  EXPECT_EQ(obs::to_prometheus(snap), obs::to_prometheus(snap));
}

}  // namespace
