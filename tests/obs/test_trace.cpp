#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using obs::SpanKind;
using obs::TraceEvent;
using obs::TraceRing;

TEST(Trace, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 8u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(Trace, OverflowKeepsNewestAndCountsDropped) {
  TraceRing ring(8);
  for (std::uint64_t seq = 0; seq < 20; ++seq) {
    ring.emit(seq, SpanKind::kAdmit, /*a=*/static_cast<std::uint32_t>(seq));
  }
  EXPECT_EQ(ring.emitted(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: the survivors are the last 8 emitted, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12u + i);
    EXPECT_EQ(events[i].kind, SpanKind::kAdmit);
  }
  // Timestamps never run backwards within the ring.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
  }
}

TEST(Trace, PartialFillSnapshotsInEmissionOrder) {
  TraceRing ring(16);
  ring.emit(7, SpanKind::kPublish);
  ring.emit(3, SpanKind::kRollback, /*a=*/0, /*b=*/1);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 7u);
  EXPECT_EQ(events[0].kind, SpanKind::kPublish);
  EXPECT_EQ(events[1].seq, 3u);
  EXPECT_EQ(events[1].b, 1u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Trace, SamplingIsADeterministicFunctionOfSeedAndSeq) {
  TraceRing a(8);
  TraceRing b(8);
  a.configure(/*seed=*/42, /*sample_period=*/4);
  b.configure(/*seed=*/42, /*sample_period=*/4);
  std::size_t hits = 0;
  for (std::uint64_t seq = 0; seq < 4000; ++seq) {
    ASSERT_EQ(a.sampled(seq), b.sampled(seq)) << "seq " << seq;
    hits += a.sampled(seq) ? 1 : 0;
  }
  // Roughly 1-in-4; generous bounds because it is a hash, not a stride.
  EXPECT_GT(hits, 500u);
  EXPECT_LT(hits, 2000u);

  // A different seed picks a different subset.
  TraceRing c(8);
  c.configure(/*seed=*/43, /*sample_period=*/4);
  std::size_t differs = 0;
  for (std::uint64_t seq = 0; seq < 4000; ++seq) {
    differs += (a.sampled(seq) != c.sampled(seq)) ? 1 : 0;
  }
  EXPECT_GT(differs, 0u);
}

TEST(Trace, PeriodExtremes) {
  TraceRing ring(8);
  ring.configure(/*seed=*/1, /*sample_period=*/1);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_TRUE(ring.sampled(seq));
  }
  ring.configure(/*seed=*/1, /*sample_period=*/0);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_FALSE(ring.sampled(seq));
  }
}

TEST(Trace, EmitSampledHonoursTheKnob) {
  TraceRing ring(64);
  ring.configure(/*seed=*/7, /*sample_period=*/3);
  std::size_t expected = 0;
  for (std::uint64_t seq = 0; seq < 300; ++seq) {
    expected += ring.sampled(seq) ? 1 : 0;
    ring.emit_sampled(seq, SpanKind::kComplete);
  }
  EXPECT_EQ(ring.emitted(), expected);
}

TEST(Trace, SpanKindNamesAreStable) {
  EXPECT_STREQ(obs::to_string(SpanKind::kAdmit), "ADMIT");
  EXPECT_STREQ(obs::to_string(SpanKind::kComplete), "COMPLETE");
  EXPECT_STREQ(obs::to_string(SpanKind::kQuarantine), "QUARANTINE");
}

}  // namespace
