#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsSnapshot;
using obs::Registry;

TEST(Metrics, DefaultHandlesAreNoOps) {
  // Instrumentation sites may run before registration in odd teardown
  // orders; a default-constructed handle must be safe to poke.
  Counter c;
  c.inc();
  c.add(7);
  Gauge g;
  g.set(3);
  g.add(-1);
  g.set_max(9);
  Histogram h;
  h.record(42);
}

TEST(Metrics, CounterRegistrationIsIdempotentByName) {
  Registry r;
  Counter a = r.counter("requests_total", "first help wins");
  Counter b = r.counter("requests_total", "ignored");
  a.add(2);
  b.add(3);
  const MetricsSnapshot snap = r.scrape();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "requests_total");
  EXPECT_EQ(snap.counters[0].help, "first help wins");
  EXPECT_EQ(snap.counters[0].value, 5u);
  EXPECT_EQ(snap.counter_value("requests_total"), 5u);
  EXPECT_EQ(snap.counter_value("no_such_metric"), 0u);
}

TEST(Metrics, GaugeSetAddAndMax) {
  Registry r;
  Gauge g = r.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(r.scrape().find_gauge("depth")->value, 7);
  g.set_max(5);  // below: no change
  EXPECT_EQ(r.scrape().find_gauge("depth")->value, 7);
  g.set_max(21);
  EXPECT_EQ(r.scrape().find_gauge("depth")->value, 21);
}

TEST(Metrics, ScrapeIsSortedByName) {
  Registry r;
  (void)r.counter("zebra");
  (void)r.counter("alpha");
  (void)r.counter("mid");
  const MetricsSnapshot snap = r.scrape();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zebra");
}

TEST(Metrics, HistogramBucketBoundariesAreInclusive) {
  Registry r;
  Histogram h = r.histogram("lat", {10, 100, 1000});
  // le-semantics: a value lands in the first bucket whose bound >= v.
  h.record(0);
  h.record(10);    // still bucket 0 (inclusive upper bound)
  h.record(11);    // bucket 1
  h.record(100);   // bucket 1
  h.record(101);   // bucket 2
  h.record(1000);  // bucket 2
  h.record(1001);  // +inf bucket
  const MetricsSnapshot snap = r.scrape();
  const auto* v = snap.find_histogram("lat");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->bounds, (std::vector<std::uint64_t>{10, 100, 1000}));
  ASSERT_EQ(v->buckets.size(), 4u);
  EXPECT_EQ(v->buckets[0], 2u);
  EXPECT_EQ(v->buckets[1], 2u);
  EXPECT_EQ(v->buckets[2], 2u);
  EXPECT_EQ(v->buckets[3], 1u);
  EXPECT_EQ(v->count, 7u);
  EXPECT_EQ(v->sum, 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST(Metrics, HistogramQuantileBound) {
  Registry r;
  Histogram h = r.histogram("q", {10, 100, 1000});
  for (int i = 0; i < 98; ++i) {
    h.record(5);  // bucket 0
  }
  h.record(50);   // bucket 1
  h.record(500);  // bucket 2
  const MetricsSnapshot snap = r.scrape();
  const auto* v = snap.find_histogram("q");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->quantile_bound(0.5), 10u);
  EXPECT_EQ(v->quantile_bound(0.99), 100u);
  EXPECT_EQ(v->quantile_bound(1.0), 1000u);
}

TEST(Metrics, EmptyHistogramQuantileIsZero) {
  Registry r;
  (void)r.histogram("empty", {1, 2});
  EXPECT_EQ(r.scrape().find_histogram("empty")->quantile_bound(0.99), 0u);
}

TEST(Metrics, ShardsMergeAcrossThreads) {
  // Each recording thread lands in its own shard (round-robin
  // assignment); the scrape must see the union, not one shard.
  Registry r;
  Counter c = r.counter("work");
  Histogram h = r.histogram("hist", {10, 1000});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(t % 2 == 0 ? 5 : 500);
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  const MetricsSnapshot snap = r.scrape();
  EXPECT_EQ(snap.counter_value("work"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto* v = snap.find_histogram("hist");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(v->buckets[0], 4u * kPerThread);
  EXPECT_EQ(v->buckets[1], 4u * kPerThread);
  EXPECT_EQ(v->buckets[2], 0u);
  EXPECT_EQ(v->sum, 4u * kPerThread * 5 + 4u * kPerThread * 500);
}

TEST(Metrics, ConcurrentRecordingWhileScraping) {
  // Scrapes are wait-free for writers and counters never move backwards
  // between scrapes.
  Registry r;
  Counter c = r.counter("flow");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = r.scrape().counter_value("flow");
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_GE(r.scrape().counter_value("flow"), last);
}

TEST(Metrics, LatencyBoundsAreAscending) {
  for (const auto& bounds :
       {obs::latency_bounds_ns(), obs::exponential_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

}  // namespace
