#include "snapshot/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fc/build.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"

namespace {

using serve::PathAnswer;
using serve::PathQuery;
using serve::QueryEngine;
using snapshot::Registry;
using snapshot::Snapshot;

struct Fixture {
  cat::Tree tree;
  std::string snap_path;
  std::vector<PathQuery> queries;
  std::vector<std::vector<std::uint32_t>> expected;  ///< proper per node

  explicit Fixture(std::size_t num_queries, std::uint64_t seed = 31) {
    std::mt19937_64 rng(seed);
    tree = cat::make_balanced_binary(7, 15000, cat::CatalogShape::kRandom,
                                     rng);
    snap_path = testing::TempDir() + "coop_registry.snap";
    EXPECT_TRUE(snapshot::write(compile(), snap_path).ok());
    queries.resize(num_queries);
    expected.resize(num_queries);
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      queries[qi].path = test_helpers::random_root_leaf_path(tree, rng);
      queries[qi].y = test_helpers::random_query(tree, rng);
      for (const cat::NodeId v : queries[qi].path) {
        expected[qi].push_back(static_cast<std::uint32_t>(
            tree.catalog(v).find(queries[qi].y)));
      }
    }
  }
  ~Fixture() { std::remove(snap_path.c_str()); }

  [[nodiscard]] serve::FlatCascade compile() const {
    const auto s = fc::Structure::build_checked(tree);
    EXPECT_TRUE(s.ok());
    auto f = serve::FlatCascade::compile(*s);
    EXPECT_TRUE(f.ok());
    return f.take();
  }

  /// A freshly opened mmap-backed snapshot of the same content.
  [[nodiscard]] Snapshot open_snapshot() const {
    auto snap = snapshot::open(snap_path);
    EXPECT_TRUE(snap.ok()) << snap.status().to_string();
    return snap.take();
  }

  [[nodiscard]] std::size_t count_mismatches(
      const std::vector<PathAnswer>& out) const {
    std::size_t bad = 0;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      if (out[qi].proper_index.size() != expected[qi].size()) {
        ++bad;
        continue;
      }
      for (std::size_t i = 0; i < expected[qi].size(); ++i) {
        bad += out[qi].proper_index[i] != expected[qi][i] ? 1 : 0;
      }
    }
    return bad;
  }
};

TEST(Registry, EmptyRegistryHasNothingToServe) {
  Registry registry;
  EXPECT_EQ(registry.current_version(), 0u);
  const Registry::Pin pin = registry.pin();
  EXPECT_FALSE(pin.has_snapshot());

  const Fixture fx(10);
  QueryEngine engine(1);
  std::vector<PathAnswer> out;
  const auto s =
      snapshot::serve_path_queries(registry, engine, fx.queries, out);
  EXPECT_EQ(s.code(), coop::StatusCode::kFailedPrecondition);
}

TEST(Registry, PublishInstallsMonotoneVersions) {
  const Fixture fx(0);
  Registry registry;
  EXPECT_EQ(registry.publish(fx.open_snapshot()), 1u);
  EXPECT_EQ(registry.current_version(), 1u);
  EXPECT_EQ(registry.publish(Snapshot::in_memory(fx.compile())), 2u);
  EXPECT_EQ(registry.current_version(), 2u);
  const Registry::Pin pin = registry.pin();
  ASSERT_TRUE(pin.has_snapshot());
  EXPECT_EQ(pin.version(), 2u);
}

TEST(Registry, PinKeepsRetiredVersionMappedUntilRelease) {
  const Fixture fx(50);
  Registry registry;
  registry.publish(fx.open_snapshot());

  Registry::Pin pin = registry.pin();
  ASSERT_TRUE(pin.has_snapshot());
  EXPECT_EQ(pin.version(), 1u);

  // Publish over the pinned version until the keep window (current plus
  // kKeepGenerations retained rollback targets) overflows and v1 truly
  // retires: it must stay mapped and fully servable through the existing
  // pin regardless.
  registry.publish(fx.open_snapshot());
  registry.publish(Snapshot::in_memory(fx.compile()));
  EXPECT_EQ(registry.current_version(), 3u);
  EXPECT_EQ(registry.retired_count(), 0u);  // v1, v2 merely displaced
  registry.publish(fx.open_snapshot());
  registry.publish(Snapshot::in_memory(fx.compile()));
  EXPECT_EQ(registry.current_version(), 5u);
  EXPECT_EQ(registry.retained_count(), 1u + Registry::kKeepGenerations);
  EXPECT_GE(registry.retired_count(), 1u);
  EXPECT_EQ(pin.version(), 1u);
  for (std::size_t qi = 0; qi < fx.queries.size(); ++qi) {
    const auto r =
        pin.snapshot().cascade.search(fx.queries[qi].path, fx.queries[qi].y);
    for (std::size_t i = 0; i < fx.expected[qi].size(); ++i) {
      ASSERT_EQ(r.proper_index[i], fx.expected[qi][i]);
    }
  }

  // Dropping the last pin drains the retired list (v2 was retired after
  // v1 but never pinned; both reclaim once no announced epoch is old
  // enough to reach them).
  pin.release();
  EXPECT_EQ(registry.retired_count(), 0u);

  // A fresh pin sees the current version.
  const Registry::Pin fresh = registry.pin();
  EXPECT_EQ(fresh.version(), 5u);
}

TEST(Registry, ServeHelpersRejectWrongKind) {
  std::mt19937_64 rng(13);
  const auto sub = geom::make_random_monotone(150, 8, rng);
  auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_TRUE(st.ok());
  auto flat = serve::FlatPointLocator::compile(*st);
  ASSERT_TRUE(flat.ok());

  Registry registry;
  registry.publish(Snapshot::in_memory(flat.take()));
  QueryEngine engine(1);

  const Fixture fx(5);
  std::vector<PathAnswer> path_out;
  EXPECT_EQ(snapshot::serve_path_queries(registry, engine, fx.queries,
                                         path_out)
                .code(),
            coop::StatusCode::kFailedPrecondition);

  // And the converse: a cascade snapshot cannot serve point queries.
  Registry cascades;
  cascades.publish(Snapshot::in_memory(fx.compile()));
  std::vector<geom::Point> pts{{0, 0}};
  std::vector<std::size_t> pt_out;
  EXPECT_EQ(snapshot::serve_point_queries(cascades, engine, pts, pt_out)
                .code(),
            coop::StatusCode::kFailedPrecondition);

  // The right kind works.
  std::vector<geom::Point> qs;
  for (int i = 0; i < 100; ++i) {
    qs.push_back(geom::random_query_point(sub, rng));
  }
  std::vector<std::size_t> regions;
  ASSERT_TRUE(
      snapshot::serve_point_queries(registry, engine, qs, regions).ok());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(regions[i], sub.locate_brute(qs[i]));
  }
}

TEST(Registry, LastKnownGoodTracksScrubbedGenerations) {
  const Fixture fx(0);
  Registry registry;
  EXPECT_EQ(registry.last_known_good(), 0u);

  registry.publish(fx.open_snapshot());  // v1
  EXPECT_EQ(registry.last_known_good(), 0u);  // never scrubbed
  registry.mark_good(1);
  EXPECT_EQ(registry.last_known_good(), 1u);

  registry.publish(fx.open_snapshot());  // v2, v1 retained
  registry.mark_good(2);
  EXPECT_EQ(registry.last_known_good(), 2u);
  // The quarantine lookup skips the suspect itself.
  EXPECT_EQ(registry.last_known_good(/*excluding=*/2), 1u);
  EXPECT_EQ(registry.last_known_good(/*excluding=*/1), 2u);

  // Marking a generation that is no longer retained is a harmless no-op.
  registry.mark_good(99);
  EXPECT_EQ(registry.last_known_good(), 2u);
}

TEST(Registry, KeepWindowNeverSpillsTheNewestGoodGeneration) {
  const Fixture fx(0);
  Registry registry;
  registry.publish(fx.open_snapshot());  // v1
  registry.mark_good(1);
  // Publish far past the keep window without ever scrubbing the newer
  // generations: v1 is the only good one and must survive every spill.
  for (int i = 0; i < 6; ++i) {
    registry.publish(fx.open_snapshot());
  }
  EXPECT_EQ(registry.current_version(), 7u);
  EXPECT_EQ(registry.last_known_good(), 1u);
  EXPECT_TRUE(registry.rollback(1).ok());
  EXPECT_EQ(registry.current_version(), 1u);
}

TEST(Registry, RollbackReinstatesRetainedGeneration) {
  const Fixture fx(64);
  Registry registry;
  registry.publish(fx.open_snapshot());  // v1
  registry.mark_good(1);
  registry.publish(fx.open_snapshot());  // v2 (the one we will quarantine)

  // A reader is pinned to the soon-to-be-quarantined generation: the
  // rollback must not unmap it under the reader (ASan runs prove it).
  Registry::Pin reader = registry.pin();
  ASSERT_TRUE(reader.has_snapshot());
  EXPECT_EQ(reader.version(), 2u);

  // Guarded rollback: wrong if_current loses the race and is refused.
  EXPECT_EQ(registry.rollback(1, /*if_current=*/7).code(),
            coop::StatusCode::kFailedPrecondition);
  // Unknown target generation is refused.
  EXPECT_EQ(registry.rollback(42).code(),
            coop::StatusCode::kFailedPrecondition);
  // The real thing.
  ASSERT_TRUE(registry.rollback(1, /*if_current=*/2).ok());
  EXPECT_EQ(registry.current_version(), 1u);
  // Rolling back to the already-current generation is a trivial OK.
  EXPECT_TRUE(registry.rollback(1).ok());

  // The quarantined generation was retired, not freed: the pinned reader
  // still serves correct answers from it.
  EXPECT_GE(registry.retired_count(), 1u);
  for (std::size_t qi = 0; qi < fx.queries.size(); ++qi) {
    const auto r = reader.snapshot().cascade.search(fx.queries[qi].path,
                                                    fx.queries[qi].y);
    for (std::size_t i = 0; i < fx.expected[qi].size(); ++i) {
      ASSERT_EQ(r.proper_index[i], fx.expected[qi][i]);
    }
  }
  // Its good mark (if any) was cleared: it can no longer be a rollback
  // target even while a pin keeps it mapped.
  EXPECT_EQ(registry.last_known_good(/*excluding=*/1), 0u);

  // Draining the reader reclaims the quarantined mapping.
  reader.release();
  EXPECT_EQ(registry.retired_count(), 0u);

  // New traffic serves the reinstated generation.
  const Registry::Pin fresh = registry.pin();
  EXPECT_EQ(fresh.version(), 1u);
}

TEST(Registry, HotSwapUnderConcurrentLoad) {
  // The acceptance scenario: many publish cycles while reader threads
  // serve continuously.  Every batch must come back complete and correct
  // (the snapshots all carry the same content, so the oracle is
  // version-independent), with zero mismatches and zero use-after-unmap
  // (the latter is what ASan runs of this test prove).
  const Fixture fx(256);
  Registry registry;
  registry.publish(fx.open_snapshot());

  constexpr int kPublishes = 12;
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> total_mismatches{0};
  std::atomic<std::size_t> total_batches{0};
  std::atomic<std::size_t> serve_failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      QueryEngine engine(2);
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::vector<PathAnswer> out;
        serve::BatchReport report;
        std::uint64_t version = 0;
        const auto s = snapshot::serve_path_queries(
            registry, engine, fx.queries, out, &report, &version);
        if (!s.ok()) {
          serve_failures.fetch_add(1);
          continue;
        }
        // Versions served by one reader never go backwards.
        if (version < last_version) {
          serve_failures.fetch_add(1);
        }
        last_version = version;
        total_mismatches.fetch_add(fx.count_mismatches(out));
        total_batches.fetch_add(1);
      }
      (void)r;
    });
  }

  // Publisher: alternate mmap-backed reopens and fresh in-memory
  // compiles of the same tree, so both lifetimes cross the epoch
  // machinery while readers are mid-batch.
  for (int i = 0; i < kPublishes; ++i) {
    if (i % 2 == 0) {
      registry.publish(fx.open_snapshot());
    } else {
      registry.publish(Snapshot::in_memory(fx.compile()));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true);
  for (auto& th : readers) {
    th.join();
  }

  EXPECT_EQ(registry.current_version(), 1u + kPublishes);
  EXPECT_EQ(total_mismatches.load(), 0u);
  EXPECT_EQ(serve_failures.load(), 0u);
  EXPECT_GT(total_batches.load(), 0u);
  // With every reader drained, the retired list reclaims completely.
  EXPECT_EQ(registry.retired_count(), 0u);
}

}  // namespace
