// Satellite of the snapshot subsystem: every file-level fault kind the
// robust harness can inject must be rejected by snapshot::open with a
// descriptive Status — a damaged snapshot can never reach
// Registry::publish, because publish only ever receives the value side
// of open()'s Expected.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "fc/build.hpp"
#include "geom/generators.hpp"
#include "robust/corrupt.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using robust::CorruptionKind;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "coop_" + name;
}

/// Write a fresh, known-good snapshot (the corruption target; re-written
/// for every fault so faults never compound).
void write_good_snapshot(const std::string& path) {
  std::mt19937_64 rng(17);
  const auto t = cat::make_balanced_binary(5, 4000, cat::CatalogShape::kRandom,
                                           rng);
  const auto s = fc::Structure::build_checked(t);
  ASSERT_TRUE(s.ok());
  auto flat = serve::FlatCascade::compile(*s);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(snapshot::write(*flat, path).ok());
}

TEST(SnapshotCorruption, EveryFaultKindIsRejectedByOpen) {
  const std::string path = tmp_path("victim.snap");
  for (const CorruptionKind kind : robust::kAllSnapshotFaultKinds) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      SCOPED_TRACE(std::string(robust::to_string(kind)) + " seed " +
                   std::to_string(seed));
      write_good_snapshot(path);
      {
        auto good = snapshot::open(path);
        ASSERT_TRUE(good.ok()) << good.status().to_string();
      }
      const auto injected = robust::corrupt_file(path, kind, seed);
      ASSERT_TRUE(injected.ok()) << injected.to_string();
      auto snap = snapshot::open(path);
      ASSERT_FALSE(snap.ok())
          << "undetected " << robust::to_string(kind) << " fault";
      // Descriptive Status: a real code and a message naming the damage,
      // prefixed with the offending path.
      EXPECT_NE(snap.status().code(), coop::StatusCode::kOk);
      EXPECT_NE(snap.status().code(), coop::StatusCode::kInternal)
          << snap.status().to_string();
      EXPECT_FALSE(snap.status().message().empty());
      EXPECT_NE(snap.status().message().find(path), std::string::npos)
          << snap.status().to_string();
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruption, PointLocatorSnapshotsAreCoveredToo) {
  // The fault kinds are format-level, so they apply to pointloc files
  // unchanged; spot-check one seed of each kind.
  std::mt19937_64 rng(23);
  const auto sub = geom::make_random_monotone(200, 8, rng);
  auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_TRUE(st.ok());
  auto flat = serve::FlatPointLocator::compile(*st);
  ASSERT_TRUE(flat.ok());
  const std::string path = tmp_path("victim_pl.snap");
  for (const CorruptionKind kind : robust::kAllSnapshotFaultKinds) {
    SCOPED_TRACE(robust::to_string(kind));
    ASSERT_TRUE(snapshot::write(*flat, path).ok());
    ASSERT_TRUE(robust::corrupt_file(path, kind, 3).ok());
    auto snap = snapshot::open(path);
    EXPECT_FALSE(snap.ok());
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruption, ForgedSimdLayoutIsRejectedAsCorrupted) {
  // The simd-layout kind re-forges every checksum, so this is precisely
  // the fault the CRCs can NOT catch: open() must reject it with a typed
  // kCorrupted Status from the recompute-and-compare structural check.
  const std::string path = tmp_path("victim_simd.snap");
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    write_good_snapshot(path);
    ASSERT_TRUE(
        robust::corrupt_file(path, CorruptionKind::kSnapshotSimdLayout, seed)
            .ok());
    // Checksum-perfect: the CRC verifier has nothing to complain about.
    {
      auto mapped = snapshot::open(path);
      ASSERT_FALSE(mapped.ok());
      EXPECT_EQ(mapped.status().code(), coop::StatusCode::kCorrupted)
          << mapped.status().to_string();
      EXPECT_NE(mapped.status().message().find("simd layout"),
                std::string::npos)
          << mapped.status().to_string();
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruption, FaultKindsHaveNames) {
  for (const CorruptionKind kind : robust::kAllSnapshotFaultKinds) {
    EXPECT_NE(robust::to_string(kind), nullptr);
    EXPECT_NE(std::string(robust::to_string(kind)).find("snapshot"),
              std::string::npos);
  }
}

TEST(SnapshotCorruption, CorruptFileRejectsNonSnapshots) {
  const std::string path = tmp_path("not_snap.txt");
  std::ofstream(path) << "just some text, definitely not COOPSNAP-framed";
  const auto s = robust::corrupt_file(path, CorruptionKind::kSnapshotTruncated,
                                      1);
  EXPECT_EQ(s.code(), coop::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SnapshotCorruption, CorruptFileRejectsMissingFile) {
  const auto s = robust::corrupt_file(tmp_path("nope.snap"),
                                      CorruptionKind::kSnapshotTruncated, 1);
  EXPECT_EQ(s.code(), coop::StatusCode::kInvalidArgument);
}

TEST(SnapshotCorruption, StructureKindsDoNotApplyToFiles) {
  const std::string path = tmp_path("victim2.snap");
  write_good_snapshot(path);
  const auto s = robust::corrupt_file(path, CorruptionKind::kUnsortedCatalog,
                                      1);
  EXPECT_EQ(s.code(), coop::StatusCode::kFailedPrecondition);
  // And the file is untouched: still opens.
  EXPECT_TRUE(snapshot::open(path).ok());
  std::remove(path.c_str());
}

}  // namespace
