// Format v2 (the blocked multiway search layout sections) round-trips,
// and v1 files — crafted here byte-for-byte from a v2 file by dropping
// the layout sections, shrinking the meta payload to its 56-byte v1
// prefix, and re-forging every CRC — still load, with the layout rebuilt
// transparently from the validated key sections.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fc/build.hpp"
#include "robust/corrupt.hpp"
#include "serve/simd_find.hpp"
#include "snapshot/format.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using snapshot::SectionId;
using snapshot::SectionRecord;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "coop_" + name;
}

serve::FlatCascade build_cascade(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto t =
      cat::make_balanced_binary(5, 3000, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  auto flat = serve::FlatCascade::compile(s);
  EXPECT_TRUE(flat.ok());
  return flat.take();
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Rewrite a v2 cascade snapshot as the v1 format: drop the three layout
/// sections (they are the last payloads, so the file truncates cleanly),
/// shrink the kMeta record to the 56-byte v1 prefix, stamp version 1,
/// and re-forge the meta/table/header CRCs.  The result is exactly what
/// a v1 writer produced.
void downgrade_to_v1(const std::string& path) {
  std::vector<unsigned char> bytes = slurp(path);
  ASSERT_GE(bytes.size(), sizeof(snapshot::FileHeader));
  snapshot::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  ASSERT_EQ(header.version, 2u);

  std::vector<SectionRecord> table(header.section_count);
  std::memcpy(table.data(), bytes.data() + sizeof(header),
              table.size() * sizeof(SectionRecord));
  std::vector<SectionRecord> kept;
  std::uint64_t end = sizeof(header);
  for (SectionRecord rec : table) {
    const auto id = static_cast<SectionId>(rec.id);
    if (id == SectionId::kSimdKeys || id == SectionId::kSimdPos ||
        id == SectionId::kSimdOff) {
      continue;
    }
    if (id == SectionId::kMeta) {
      ASSERT_EQ(rec.length, sizeof(snapshot::ArenaMeta));
      rec.elem_size = snapshot::kArenaMetaSizeV1;
      rec.length = snapshot::kArenaMetaSizeV1;
      rec.crc32 = snapshot::crc32(bytes.data() + rec.offset, rec.length);
    }
    end = std::max(end, rec.offset + rec.length);
    kept.push_back(rec);
  }
  ASSERT_EQ(kept.size(), table.size() - 3);

  bytes.resize(end);
  header.version = 1;
  header.section_count = static_cast<std::uint32_t>(kept.size());
  header.file_size = bytes.size();
  const std::size_t table_bytes = kept.size() * sizeof(SectionRecord);
  std::memcpy(bytes.data() + sizeof(header), kept.data(), table_bytes);
  header.table_crc = snapshot::crc32(bytes.data() + sizeof(header),
                                     table_bytes);
  header.header_crc = snapshot::header_crc(header);
  std::memcpy(bytes.data(), &header, sizeof(header));
  spit(path, bytes);
}

void expect_serves_identically(const serve::FlatCascade& opened,
                               const serve::FlatCascade& reference,
                               std::uint64_t seed) {
  ASSERT_EQ(opened.num_nodes(), reference.num_nodes());
  std::mt19937_64 rng(seed);
  for (std::uint32_t v = 0; v < opened.num_nodes(); ++v) {
    for (int i = 0; i < 20; ++i) {
      const auto y = static_cast<cat::Key>(rng() % 2'000'000'000);
      const std::uint32_t want = reference.find_binary(v, y);
      EXPECT_EQ(opened.find(v, y), want) << "node " << v << " y=" << y;
      EXPECT_EQ(opened.find_binary(v, y), want) << "node " << v << " y=" << y;
    }
  }
}

TEST(SnapshotFormatV2, RoundTripCarriesTheMultiwayLayout) {
  const std::string path = tmp_path("v2_roundtrip.snap");
  const serve::FlatCascade flat = build_cascade(31);
  ASSERT_TRUE(snapshot::write(flat, path).ok());

  // The file advertises v2 and carries the three layout sections.
  std::vector<unsigned char> bytes = slurp(path);
  snapshot::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  EXPECT_EQ(header.version, snapshot::kFormatVersion);
  std::vector<SectionRecord> table(header.section_count);
  std::memcpy(table.data(), bytes.data() + sizeof(header),
              table.size() * sizeof(SectionRecord));
  int simd_sections = 0;
  for (const SectionRecord& rec : table) {
    const auto id = static_cast<SectionId>(rec.id);
    if (id == SectionId::kSimdKeys || id == SectionId::kSimdPos ||
        id == SectionId::kSimdOff) {
      ++simd_sections;
      EXPECT_GT(rec.length, 0u);
    }
  }
  EXPECT_EQ(simd_sections, 3);

  auto snap = snapshot::open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().to_string();
  expect_serves_identically(snap->cascade, flat, 77);
  std::remove(path.c_str());
}

TEST(SnapshotFormatV2, V1FilesLoadViaTransparentRelayout) {
  const std::string path = tmp_path("v1_compat.snap");
  const serve::FlatCascade flat = build_cascade(32);
  ASSERT_TRUE(snapshot::write(flat, path).ok());
  downgrade_to_v1(path);

  auto snap = snapshot::open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().to_string();
  ASSERT_EQ(snap->kind, snapshot::SnapshotKind::kCascade);
  // find() works — the layout was rebuilt from the mapped keys, not
  // mapped — and answers match the v2-compiled reference exactly.
  expect_serves_identically(snap->cascade, flat, 78);
  std::remove(path.c_str());
}

TEST(SnapshotFormatV2, V1FilesCannotHostTheSimdLayoutFault) {
  const std::string path = tmp_path("v1_nofault.snap");
  const serve::FlatCascade flat = build_cascade(33);
  ASSERT_TRUE(snapshot::write(flat, path).ok());
  downgrade_to_v1(path);
  const auto s = robust::corrupt_file(
      path, robust::CorruptionKind::kSnapshotSimdLayout, 1);
  EXPECT_EQ(s.code(), coop::StatusCode::kFailedPrecondition)
      << s.to_string();
  // And the attempt left the file untouched.
  EXPECT_TRUE(snapshot::open(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotFormatV2, FutureVersionsAreRejected) {
  const std::string path = tmp_path("v3_future.snap");
  const serve::FlatCascade flat = build_cascade(34);
  ASSERT_TRUE(snapshot::write(flat, path).ok());
  std::vector<unsigned char> bytes = slurp(path);
  snapshot::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = snapshot::kFormatVersion + 1;
  header.header_crc = snapshot::header_crc(header);
  std::memcpy(bytes.data(), &header, sizeof(header));
  spit(path, bytes);
  auto snap = snapshot::open(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), coop::StatusCode::kFailedPrecondition);
  EXPECT_NE(snap.status().message().find("version"), std::string::npos)
      << snap.status().to_string();
  std::remove(path.c_str());
}

}  // namespace
