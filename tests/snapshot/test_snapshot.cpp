#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fc/search.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"
#include "pointloc/separator_tree.hpp"
#include "serve/flat_pointloc.hpp"

namespace {

using cat::CatalogShape;
using serve::FlatCascade;
using serve::FlatPointLocator;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "coop_" + name;
}

serve::FlatCascade compile_tree(const cat::Tree& t) {
  const auto s = fc::Structure::build_checked(t);
  EXPECT_TRUE(s.ok()) << s.status().to_string();
  auto f = FlatCascade::compile(*s);
  EXPECT_TRUE(f.ok()) << f.status().to_string();
  return f.take();
}

/// Round-trip fidelity oracle: the mmap-loaded cascade must answer every
/// query bit-identically (aug AND proper index) to the in-memory arena it
/// was written from, and both must agree with the tree's own binary
/// search.
void expect_round_trip_identical(const cat::Tree& t, const FlatCascade& mem,
                                 const FlatCascade& loaded,
                                 std::uint64_t seed) {
  ASSERT_EQ(loaded.num_nodes(), mem.num_nodes());
  ASSERT_EQ(loaded.total_entries(), mem.total_entries());
  ASSERT_EQ(loaded.fanout_bound(), mem.fanout_bound());
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 200; ++round) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto a = mem.search(path, y);
    const auto b = loaded.search(path, y);
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(a.aug_index[i], b.aug_index[i]) << "round " << round;
      ASSERT_EQ(a.proper_index[i], b.proper_index[i]) << "round " << round;
      ASSERT_EQ(b.proper_index[i], t.catalog(path[i]).find(y));
    }
  }
}

TEST(Snapshot, CascadeRoundTripAcrossShapes) {
  struct Case {
    const char* name;
    std::uint32_t height;
    std::size_t entries;
    CatalogShape shape;
  };
  const Case cases[] = {
      {"tiny", 1, 4, CatalogShape::kRandom},
      {"random", 7, 20000, CatalogShape::kRandom},
      {"root_heavy", 5, 8000, CatalogShape::kRootHeavy},
      {"skewed", 6, 12000, CatalogShape::kSkewed},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::mt19937_64 rng(42);
    const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape,
                                             rng);
    const auto mem = compile_tree(t);
    const std::string path = tmp_path(std::string("rt_") + c.name + ".snap");
    ASSERT_TRUE(snapshot::write(mem, path).ok());
    auto snap = snapshot::open(path);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    EXPECT_EQ(snap->kind, snapshot::SnapshotKind::kCascade);
    EXPECT_TRUE(snap->mapping.mapped());
    expect_round_trip_identical(t, mem, snap->cascade, 7);
    std::remove(path.c_str());
  }
}

TEST(Snapshot, GeneralTreeRoundTrip) {
  // Non-binary topologies exercise the bridge-row and child-slot layout
  // checks with num_children > 2.
  std::mt19937_64 rng(5);
  const auto t = cat::make_random_tree(200, 6, 10000, CatalogShape::kRandom,
                                       rng);
  const auto mem = compile_tree(t);
  const std::string path = tmp_path("rt_general.snap");
  ASSERT_TRUE(snapshot::write(mem, path).ok());
  auto snap = snapshot::open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().to_string();
  expect_round_trip_identical(t, mem, snap->cascade, 11);
  std::remove(path.c_str());
}

TEST(Snapshot, PointLocatorRoundTrip) {
  std::mt19937_64 rng(9);
  const auto sub = geom::make_random_monotone(400, 16, rng);
  auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_TRUE(st.ok()) << st.status().to_string();
  auto mem = FlatPointLocator::compile(*st);
  ASSERT_TRUE(mem.ok()) << mem.status().to_string();

  const std::string path = tmp_path("rt_pointloc.snap");
  ASSERT_TRUE(snapshot::write(*mem, path).ok());
  auto snap = snapshot::open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().to_string();
  ASSERT_EQ(snap->kind, snapshot::SnapshotKind::kPointLocator);
  ASSERT_TRUE(snap->pointloc.has_value());
  EXPECT_EQ(snap->pointloc->num_regions(), mem->num_regions());

  for (int round = 0; round < 500; ++round) {
    const auto q = geom::random_query_point(sub, rng);
    const std::size_t got = snap->pointloc->locate(q);
    ASSERT_EQ(got, mem->locate(q)) << "round " << round;
    ASSERT_EQ(got, sub.locate_brute(q)) << "round " << round;
  }
  std::remove(path.c_str());
}

TEST(Snapshot, ReopenedFileIsByteStable) {
  // Writing the same arena twice produces identical bytes (no timestamps
  // or randomness in the format) — a differential guard for the CI
  // save -> reopen -> save comparison.
  std::mt19937_64 rng(3);
  const auto t = cat::make_balanced_binary(5, 3000, CatalogShape::kRandom,
                                           rng);
  const auto mem = compile_tree(t);
  const std::string p1 = tmp_path("stable1.snap");
  const std::string p2 = tmp_path("stable2.snap");
  ASSERT_TRUE(snapshot::write(mem, p1).ok());
  ASSERT_TRUE(snapshot::write(mem, p2).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  const std::string b1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  const std::string b2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Snapshot, WriteRejectsEmptyCascade) {
  const FlatCascade empty;
  const auto s = snapshot::write(empty, tmp_path("never.snap"));
  EXPECT_EQ(s.code(), coop::StatusCode::kFailedPrecondition);
}

TEST(Snapshot, WriteToUnwritablePathFails) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(2, 50, CatalogShape::kRandom, rng);
  const auto mem = compile_tree(t);
  const auto s = snapshot::write(mem, "/no/such/dir/x.snap");
  EXPECT_FALSE(s.ok());
}

TEST(Snapshot, OpenRejectsMissingFile) {
  auto snap = snapshot::open(tmp_path("does_not_exist.snap"));
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), coop::StatusCode::kInvalidArgument);
}

TEST(Snapshot, OpenRejectsNonSnapshotFiles) {
  // Empty, too-short, and wrong-magic files must all be descriptive
  // Status failures, never crashes or false opens.
  const std::string path = tmp_path("not_a_snapshot");
  for (const std::string& content :
       {std::string(), std::string("short"), std::string(4096, 'x')}) {
    std::ofstream(path, std::ios::binary) << content;
    auto snap = snapshot::open(path);
    ASSERT_FALSE(snap.ok()) << content.size() << " bytes";
    EXPECT_EQ(snap.status().code(), coop::StatusCode::kCorrupted);
    EXPECT_FALSE(snap.status().message().empty());
  }
  std::remove(path.c_str());
}

TEST(Snapshot, OpenRejectsFutureFormatVersion) {
  // Versioning rule (DESIGN.md §8): readers refuse files from a newer
  // format instead of guessing at their layout.
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(2, 50, CatalogShape::kRandom, rng);
  const std::string path = tmp_path("future.snap");
  ASSERT_TRUE(snapshot::write(compile_tree(t), path).ok());

  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  snapshot::FileHeader h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  h.version = snapshot::kFormatVersion + 1;
  h.header_crc = snapshot::header_crc(h);
  f.seekp(0);
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.close();

  auto snap = snapshot::open(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), coop::StatusCode::kFailedPrecondition);
  EXPECT_NE(snap.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, InMemoryWrapsCompiledStructures) {
  std::mt19937_64 rng(2);
  const auto t = cat::make_balanced_binary(4, 1000, CatalogShape::kRandom,
                                           rng);
  auto snap = snapshot::Snapshot::in_memory(compile_tree(t));
  EXPECT_EQ(snap.kind, snapshot::SnapshotKind::kCascade);
  EXPECT_FALSE(snap.mapping.mapped());
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  const auto r = snap.cascade.search(path, 500);
  for (std::size_t i = 0; i < path.size(); ++i) {
    EXPECT_EQ(r.proper_index[i], t.catalog(path[i]).find(500));
  }
}

}  // namespace
