#include "catalog/tree.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using cat::CatalogShape;
using cat::NodeId;
using cat::Tree;

TEST(Tree, BalancedBinaryShape) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(4, 100, CatalogShape::kUniform, rng);
  EXPECT_EQ(t.num_nodes(), 31u);
  EXPECT_EQ(t.height(), 4u);
  EXPECT_TRUE(t.is_binary());
  EXPECT_TRUE(t.is_complete_binary());
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.total_catalog_size(), 100u);
  EXPECT_EQ(t.level(0).size(), 1u);
  EXPECT_EQ(t.level(4).size(), 16u);
}

TEST(Tree, ChildSlots) {
  std::mt19937_64 rng(2);
  const auto t = cat::make_balanced_binary(2, 10, CatalogShape::kUniform, rng);
  EXPECT_EQ(t.child_slot(t.root()), -1);
  const auto kids = t.children(t.root());
  EXPECT_EQ(t.child_slot(kids[0]), 0);
  EXPECT_EQ(t.child_slot(kids[1]), 1);
  EXPECT_EQ(t.parent(kids[1]), t.root());
}

TEST(Tree, PathTree) {
  std::mt19937_64 rng(3);
  const auto t = cat::make_path_tree(50, 200, CatalogShape::kRandom, rng);
  EXPECT_EQ(t.num_nodes(), 50u);
  EXPECT_EQ(t.height(), 49u);
  EXPECT_EQ(t.max_degree(), 1u);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.total_catalog_size(), 200u);
}

class RandomTreeParam : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Degrees, RandomTreeParam,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST_P(RandomTreeParam, RandomTreeRespectsMaxDegree) {
  std::mt19937_64 rng(GetParam());
  const auto t = cat::make_random_tree(200, GetParam(), 1000,
                                       CatalogShape::kRandom, rng);
  EXPECT_TRUE(t.validate());
  EXPECT_LE(t.max_degree(), GetParam());
  EXPECT_EQ(t.total_catalog_size(), 1000u);
}

TEST(Tree, SplitSizesShapes) {
  std::mt19937_64 rng(11);
  for (auto shape :
       {CatalogShape::kUniform, CatalogShape::kRandom, CatalogShape::kRootHeavy,
        CatalogShape::kLeafHeavy, CatalogShape::kSkewed}) {
    const auto sizes = cat::split_sizes(1000, 37, shape, rng);
    std::size_t total = 0;
    for (auto s : sizes) {
      total += s;
    }
    EXPECT_EQ(total, 1000u);
    EXPECT_EQ(sizes.size(), 37u);
  }
}

TEST(Tree, RootHeavyConcentratesAtRoot) {
  std::mt19937_64 rng(12);
  const auto sizes = cat::split_sizes(1000, 10, CatalogShape::kRootHeavy, rng);
  EXPECT_EQ(sizes[0], 1000u - 9u);
}

TEST(Tree, RandomSortedKeysDistinctAndSorted) {
  std::mt19937_64 rng(13);
  const auto keys = cat::random_sorted_keys(500, 1'000'000, rng);
  ASSERT_EQ(keys.size(), 500u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
}

TEST(Binarize, LeavesLowDegreeTreesAlone) {
  std::mt19937_64 rng(14);
  const auto t = cat::make_balanced_binary(3, 30, CatalogShape::kUniform, rng);
  std::vector<NodeId> orig;
  const auto b = cat::binarize(t, orig);
  EXPECT_EQ(b.num_nodes(), t.num_nodes());
  EXPECT_TRUE(b.is_binary());
}

TEST(Binarize, ExpandsHighDegreeNodes) {
  std::mt19937_64 rng(15);
  const auto t =
      cat::make_random_tree(100, 6, 300, CatalogShape::kRandom, rng);
  std::vector<NodeId> orig;
  const auto b = cat::binarize(t, orig);
  EXPECT_TRUE(b.is_binary());
  EXPECT_TRUE(b.validate());
  // Every original node is represented and keeps its catalog.
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(orig[v], NodeId(v));
    EXPECT_EQ(b.catalog(NodeId(v)).size(), t.catalog(NodeId(v)).size());
  }
  // Auxiliary nodes carry empty catalogs and map to no original node.
  for (std::size_t v = t.num_nodes(); v < b.num_nodes(); ++v) {
    EXPECT_EQ(orig[v], cat::kNullNode);
    EXPECT_EQ(b.catalog(NodeId(v)).real_size(), 0u);
  }
  // Total catalog content is preserved.
  EXPECT_EQ(b.total_catalog_size(), t.total_catalog_size());
}

TEST(Binarize, PreservesDescendantReachability) {
  std::mt19937_64 rng(16);
  const auto t = cat::make_random_tree(60, 5, 100, CatalogShape::kRandom, rng);
  std::vector<NodeId> orig;
  const auto b = cat::binarize(t, orig);
  // For every original edge (v, w), w must be reachable from v in the
  // binarized tree through auxiliary nodes only.
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    for (NodeId w : t.children(NodeId(v))) {
      NodeId cur = NodeId(v);
      bool found = false;
      for (int guard = 0; guard < 64 && !found; ++guard) {
        const auto kids = b.children(cur);
        bool advanced = false;
        for (NodeId k : kids) {
          if (k == w) {
            found = true;
            break;
          }
        }
        if (found) {
          break;
        }
        for (NodeId k : kids) {
          if (orig[k] == cat::kNullNode) {
            cur = k;
            advanced = true;
            break;
          }
        }
        if (!advanced) {
          break;
        }
      }
      EXPECT_TRUE(found) << "edge " << v << "->" << w;
    }
  }
}

}  // namespace
