#include "catalog/tree_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "pram/primitives.hpp"

namespace {

using cat::CatalogShape;
using cat::NodeId;

TEST(ListRank, SimpleChain) {
  pram::Machine m(4);
  // 0 -> 1 -> 2 -> 3 -> end
  const std::vector<std::int64_t> next{1, 2, 3, -1};
  const auto rank = pram::list_rank(m, next);
  EXPECT_EQ(rank, (std::vector<std::int64_t>{3, 2, 1, 0}));
}

TEST(ListRank, ScrambledList) {
  std::mt19937_64 rng(5);
  const std::size_t n = 1000;
  // A random permutation defines the list order.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<std::int64_t> next(n, -1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    next[order[i]] = std::int64_t(order[i + 1]);
  }
  pram::Machine m(64);
  const auto rank = pram::list_rank(m, next);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rank[order[i]], std::int64_t(n - 1 - i));
  }
}

TEST(ListRank, LogDepth) {
  const std::size_t n = 1 << 14;
  std::vector<std::int64_t> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = i + 1 < n ? std::int64_t(i + 1) : -1;
  }
  pram::Machine m(n);
  (void)pram::list_rank(m, next);
  EXPECT_LE(m.stats().steps, 3 * pram::ceil_log2(n) + 10);
}

TEST(ListRank, Empty) {
  pram::Machine m(2);
  EXPECT_TRUE(pram::list_rank(m, {}).empty());
}

class EulerTourParam : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, EulerTourParam,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(EulerTourParam, DepthsMatchBfs) {
  std::mt19937_64 rng(GetParam());
  const std::size_t deg = 1 + rng() % 4;
  const auto t = cat::make_random_tree(2 + rng() % 500, deg, 10,
                                       CatalogShape::kUniform, rng);
  pram::Machine m(128);
  const auto res = pram::euler_tour(m, t);
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(res.depth[v], t.depth(NodeId(v))) << "node " << v;
  }
}

TEST_P(EulerTourParam, SubtreeSizesMatchRecursion) {
  std::mt19937_64 rng(GetParam() * 11);
  const auto t = cat::make_random_tree(2 + rng() % 300, 3, 10,
                                       CatalogShape::kUniform, rng);
  pram::Machine m(64);
  const auto res = pram::euler_tour(m, t);
  // Reference sizes bottom-up.
  std::vector<std::uint32_t> size(t.num_nodes(), 1);
  for (std::uint32_t d = t.height() + 1; d-- > 0;) {
    for (NodeId v : t.level(d)) {
      for (NodeId w : t.children(v)) {
        size[v] += size[w];
      }
    }
  }
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(res.subtree_size[v], size[v]) << "node " << v;
  }
}

TEST_P(EulerTourParam, PreorderIsConsistent) {
  std::mt19937_64 rng(GetParam() * 17);
  const auto t = cat::make_random_tree(2 + rng() % 300, 4, 10,
                                       CatalogShape::kUniform, rng);
  pram::Machine m(64);
  const auto res = pram::euler_tour(m, t);
  // Reference preorder by DFS.
  std::vector<std::uint32_t> pre(t.num_nodes(), 0);
  std::uint32_t counter = 0;
  std::vector<NodeId> stack{t.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    pre[v] = counter++;
    const auto kids = t.children(v);
    for (std::size_t i = kids.size(); i-- > 0;) {
      stack.push_back(kids[i]);
    }
  }
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(res.preorder[v], pre[v]) << "node " << v;
  }
}

TEST(EulerTour, SingleNode) {
  cat::Tree t(1);
  t.finalize();
  pram::Machine m(4);
  const auto res = pram::euler_tour(m, t);
  EXPECT_EQ(res.depth[0], 0u);
  EXPECT_EQ(res.subtree_size[0], 1u);
  EXPECT_EQ(res.preorder[0], 0u);
}

TEST(EulerTour, DepthIsLogarithmic) {
  std::mt19937_64 rng(123);
  const auto t = cat::make_balanced_binary(12, 10, CatalogShape::kUniform, rng);
  pram::Machine m(t.num_nodes());
  (void)pram::euler_tour(m, t);
  const double logn = std::log2(double(t.num_nodes()));
  EXPECT_LE(double(m.stats().steps), 8 * logn + 40);
}

}  // namespace
