#include "catalog/catalog.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using cat::Catalog;
using cat::Key;

TEST(Catalog, EmptyHasOnlySentinel) {
  Catalog c;
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.real_size(), 0u);
  EXPECT_EQ(c.key(0), cat::kInfinity);
  EXPECT_TRUE(c.valid());
}

TEST(Catalog, FromSortedKeys) {
  const std::vector<Key> keys{3, 7, 11};
  const auto c = Catalog::from_sorted_keys(keys);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.real_size(), 3u);
  EXPECT_EQ(c.key(0), 3);
  EXPECT_EQ(c.key(3), cat::kInfinity);
  EXPECT_EQ(c.payload(1), 1u);
  EXPECT_TRUE(c.valid());
}

TEST(Catalog, FindReturnsSuccessor) {
  const std::vector<Key> keys{10, 20, 30};
  const auto c = Catalog::from_sorted_keys(keys);
  EXPECT_EQ(c.find(5), 0u);
  EXPECT_EQ(c.find(10), 0u);
  EXPECT_EQ(c.find(11), 1u);
  EXPECT_EQ(c.find(30), 2u);
  EXPECT_EQ(c.find(31), 3u);  // the sentinel
}

TEST(Catalog, FindAlwaysSucceedsThanksToSentinel) {
  Catalog c;
  EXPECT_EQ(c.find(123456), 0u);
  EXPECT_EQ(c.key(c.find(123456)), cat::kInfinity);
}

TEST(Catalog, PayloadsPreserved) {
  const std::vector<Key> keys{1, 2};
  const std::vector<std::uint64_t> pl{77, 88};
  const auto c = Catalog::from_sorted(keys, pl);
  EXPECT_EQ(c.payload(0), 77u);
  EXPECT_EQ(c.payload(1), 88u);
  EXPECT_EQ(c.payload(2), Catalog::kNoPayload);
}

TEST(Catalog, FindMatchesBruteForce) {
  std::mt19937_64 rng(7);
  std::vector<Key> keys;
  Key cur = 0;
  for (int i = 0; i < 500; ++i) {
    cur += 1 + Key(rng() % 5);
    keys.push_back(cur);
  }
  const auto c = Catalog::from_sorted_keys(keys);
  for (int t = 0; t < 2000; ++t) {
    const Key y = Key(rng() % (cur + 10));
    std::size_t expect = 0;
    while (expect < keys.size() && keys[expect] < y) {
      ++expect;
    }
    ASSERT_EQ(c.find(y), expect) << y;
  }
}

}  // namespace
