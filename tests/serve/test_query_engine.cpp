#include "serve/query_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <thread>

#include "fc/search.hpp"
#include "geom/generators.hpp"
#include "helpers.hpp"
#include "pointloc/separator_tree.hpp"
#include "serve/flat_pointloc.hpp"

namespace {

using cat::CatalogShape;
using serve::BatchOptions;
using serve::FlatCascade;
using serve::PathAnswer;
using serve::PathQuery;
using serve::QueryEngine;

struct Fixture {
  cat::Tree tree;
  std::unique_ptr<fc::Structure> s;
  FlatCascade flat;
  std::vector<PathQuery> queries;

  explicit Fixture(std::size_t num_queries, std::uint64_t seed = 21) {
    std::mt19937_64 rng(seed);
    tree = cat::make_balanced_binary(8, 30000, CatalogShape::kRandom, rng);
    s = std::make_unique<fc::Structure>(fc::Structure::build(tree));
    auto f = FlatCascade::compile(*s);
    EXPECT_TRUE(f.ok());
    flat = f.take();
    queries.resize(num_queries);
    for (auto& q : queries) {
      q.path = test_helpers::random_root_leaf_path(tree, rng);
      q.y = test_helpers::random_query(tree, rng);
    }
  }

  void expect_answers_match(const std::vector<PathAnswer>& out) const {
    ASSERT_EQ(out.size(), queries.size());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto oracle = fc::search_explicit(*s, queries[qi].path,
                                              queries[qi].y);
      ASSERT_EQ(out[qi].proper_index.size(), queries[qi].path.size());
      for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
        ASSERT_EQ(out[qi].proper_index[i], oracle.proper_index[i])
            << "query " << qi << " node " << i;
        ASSERT_EQ(out[qi].aug_index[i], oracle.aug_index[i]);
      }
    }
  }
};

TEST(QueryEngine, GroupedKernelMatchesOracleOnRaggedPaths) {
  // The lockstep kernel must handle groups whose paths end at different
  // rounds: full root-leaf paths, truncated paths ending mid-tree, and
  // length-1 paths (root only), interleaved in one batch.
  std::mt19937_64 rng(77);
  const Fixture fx(0);
  std::vector<PathQuery> queries(100);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto path = test_helpers::random_root_leaf_path(fx.tree, rng);
    path.resize(1 + rng() % path.size());
    queries[qi].path = std::move(path);
    queries[qi].y = test_helpers::random_query(fx.tree, rng);
  }
  std::vector<PathAnswer> out(queries.size());
  serve::search_paths_grouped(fx.flat, queries.data(), queries.size(),
                              out.data());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto oracle =
        fc::search_explicit(*fx.s, queries[qi].path, queries[qi].y);
    ASSERT_EQ(out[qi].proper_index.size(), queries[qi].path.size());
    for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
      ASSERT_EQ(out[qi].proper_index[i], oracle.proper_index[i])
          << "query " << qi << " node " << i;
      ASSERT_EQ(out[qi].aug_index[i], oracle.aug_index[i]);
    }
  }
}

TEST(QueryEngine, BatchMatchesOracleAcrossThreadCounts) {
  const Fixture fx(500);
  for (std::size_t threads : {1u, 2u, 4u}) {
    QueryEngine engine(threads);
    EXPECT_EQ(engine.threads(), threads);
    std::vector<PathAnswer> out;
    const auto report =
        serve::serve_path_queries(fx.flat, engine, fx.queries, out);
    EXPECT_FALSE(report.degraded) << report.reason;
    fx.expect_answers_match(out);
  }
}

TEST(QueryEngine, ReusableAcrossBatches) {
  const Fixture fx(200);
  QueryEngine engine(2);
  for (int round = 0; round < 3; ++round) {
    std::vector<PathAnswer> out;
    const auto report =
        serve::serve_path_queries(fx.flat, engine, fx.queries, out);
    EXPECT_FALSE(report.degraded);
    fx.expect_answers_match(out);
  }
}

TEST(QueryEngine, EmptyBatch) {
  QueryEngine engine(2);
  const auto report = engine.for_each(0, [](std::size_t) { FAIL(); });
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.shards, 0u);
}

TEST(QueryEngine, EmptyPathSpanClearsOutputWithoutDegrading) {
  // Regression: an empty batch must early-return before sharding (the
  // n == 0 fast path in for_each), clear any stale output, and never be
  // reported degraded — with or without a deadline armed.
  const Fixture fx(0);
  QueryEngine engine(2);
  std::vector<PathAnswer> out(5);  // stale entries must not survive
  BatchOptions opts;
  opts.deadline = std::chrono::nanoseconds(1);
  const auto report =
      serve::serve_path_queries(fx.flat, engine, {}, out, opts);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(out.empty());
}

TEST(QueryEngine, EmptyPointSpanClearsOutputWithoutDegrading) {
  std::mt19937_64 rng(5);
  const auto sub = geom::make_random_monotone(60, 6, rng);
  auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_TRUE(st.ok());
  auto flat = serve::FlatPointLocator::compile(*st);
  ASSERT_TRUE(flat.ok());
  QueryEngine engine(2);
  std::vector<std::size_t> out(5);
  const auto report = serve::serve_point_queries(*flat, engine, {}, out);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(out.empty());
}

TEST(QueryEngine, DegradesOnTransientWorkerException) {
  // run_resilient discipline: a worker that throws abandons the parallel
  // attempt, and the batch is re-run sequentially — the caller still gets
  // every answer plus a degradation report, never a torn batch.
  QueryEngine engine(2);
  std::atomic<bool> thrown{false};
  std::vector<int> out(1000, 0);
  BatchOptions opts;
  opts.shard_size = 16;
  const auto report = engine.for_each(
      out.size(),
      [&](std::size_t i) {
        if (i == 357 && !thrown.exchange(true)) {
          throw std::runtime_error("transient query fault");
        }
        out[i] = static_cast<int>(i) + 1;
      },
      opts);
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.reason.find("worker exception"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.threads_used, 1u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(QueryEngine, DegradesOnDeadline) {
  QueryEngine engine(2);
  std::vector<int> out(64, 0);
  BatchOptions opts;
  opts.shard_size = 1;
  opts.deadline = std::chrono::nanoseconds(1);
  const auto report = engine.for_each(
      out.size(),
      [&](std::size_t i) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        out[i] = 1;
      },
      opts);
  // The watchdog fires during the parallel attempt; the sequential rerun
  // (which, like run_resilient's fallback, is not deadline-guarded) still
  // completes the batch.
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.reason.find("deadline"), std::string::npos);
  for (int v : out) {
    ASSERT_EQ(v, 1);
  }
}

TEST(QueryEngine, DeadlineMidGroupedBatchDegradesToSequentialRerun) {
  // Regression: a deadline expiring while serve_path_queries is inside the
  // grouped lockstep kernel must not tear the batch.  The parallel attempt
  // is abandoned wholesale, the sequential rerun recomputes every answer,
  // and the degradation is recorded in the report — callers see correct
  // answers plus `degraded`, never a half-written answer vector.
  const Fixture fx(400);
  QueryEngine engine(2);
  BatchOptions opts;
  opts.shard_size = 1;  // many shards => every worker polls the deadline
  opts.deadline = std::chrono::nanoseconds(1);
  std::vector<PathAnswer> out;
  const auto report =
      serve::serve_path_queries(fx.flat, engine, fx.queries, out, opts);
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.reason.find("deadline"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.threads_used, 1u);
  fx.expect_answers_match(out);
}

TEST(QueryEngine, ConcurrentCallersEachGetTheirFullBatch) {
  // Regression: the batch submitter releases the pool mutex while it waits
  // for the drain, so without whole-batch serialization a second for_each
  // could republish the shared batch state mid-drain and the first caller
  // would return non-degraded with none of its items executed.  Hammer the
  // pool from several threads and require every caller's output complete.
  QueryEngine engine(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kItems = 64;
  std::atomic<std::uint64_t> incomplete{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&engine, &incomplete, c] {
      BatchOptions opts;
      opts.shard_size = 1;  // many shards => maximal interleaving windows
      if (c % 2 == 0) {
        opts.deadline = std::chrono::nanoseconds(1);  // instant-abort mix
      }
      std::vector<int> out(kItems);
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::fill(out.begin(), out.end(), 0);
        engine.for_each(
            kItems, [&out](std::size_t i) { out[i] = 1; }, opts);
        for (int v : out) {
          if (v != 1) {
            incomplete.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(incomplete.load(), 0u);
}

TEST(QueryEngine, SingleThreadRunsInline) {
  QueryEngine engine(1);
  std::vector<int> out(100, 0);
  const auto report =
      engine.for_each(out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.threads_used, 1u);
  for (int v : out) {
    ASSERT_EQ(v, 1);
  }
}

}  // namespace
