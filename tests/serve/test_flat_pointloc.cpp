#include "serve/flat_pointloc.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geom/generators.hpp"
#include "robust/corrupt.hpp"
#include "serve/query_engine.hpp"

namespace {

using serve::FlatPointLocator;

TEST(FlatPointLocator, MatchesSeparatorTreeAndBruteForce) {
  for (const auto& [regions, bands] :
       {std::pair<std::size_t, std::size_t>{7, 12},
        {16, 30},
        {61, 50}}) {
    std::mt19937_64 rng(regions * 100 + bands);
    const auto sub = geom::make_random_monotone(regions, bands, rng);
    const pointloc::SeparatorTree st(sub);
    auto loc = FlatPointLocator::compile(st);
    ASSERT_TRUE(loc.ok()) << loc.status().to_string();
    EXPECT_EQ(loc->num_regions(), sub.num_regions);
    for (int qi = 0; qi < 300; ++qi) {
      const auto q = geom::random_query_point(sub, rng);
      const std::size_t expect = sub.locate_brute(q);
      ASSERT_EQ(st.locate(q), expect);
      ASSERT_EQ(loc->locate(q), expect)
          << "q=(" << q.x << "," << q.y << ") regions=" << regions;
    }
  }
}

TEST(FlatPointLocator, BatchAcrossThreadCountsMatchesOracle) {
  std::mt19937_64 rng(99);
  const auto sub = geom::make_random_monotone(32, 40, rng);
  const pointloc::SeparatorTree st(sub);
  auto loc = FlatPointLocator::compile(st);
  ASSERT_TRUE(loc.ok());
  std::vector<geom::Point> points;
  std::vector<std::size_t> expect;
  for (int i = 0; i < 400; ++i) {
    points.push_back(geom::random_query_point(sub, rng));
    expect.push_back(sub.locate_brute(points.back()));
  }
  for (std::size_t threads : {1u, 2u, 4u}) {
    serve::QueryEngine engine(threads);
    std::vector<std::size_t> out;
    const auto report =
        serve::serve_point_queries(*loc, engine, points, out);
    EXPECT_FALSE(report.degraded) << report.reason;
    ASSERT_EQ(out, expect) << "threads=" << threads;
  }
}

TEST(FlatPointLocator, RejectsCorruptedCascade) {
  const robust::CorruptionKind kinds[] = {
      robust::CorruptionKind::kMissingTerminal,
      robust::CorruptionKind::kCrossingBridges,
      robust::CorruptionKind::kBridgeOutOfRange,
      robust::CorruptionKind::kWrongProper,
  };
  for (const auto kind : kinds) {
    int injected = 0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      std::mt19937_64 rng(1000 + seed);
      const auto sub = geom::make_random_monotone(24, 30, rng);
      pointloc::SeparatorTree st(sub);
      const auto status = robust::corrupt(st, kind, seed);
      if (!status.ok()) {
        continue;
      }
      ++injected;
      const auto loc = FlatPointLocator::compile(st);
      EXPECT_FALSE(loc.ok()) << "compiled a separator tree corrupted with "
                             << robust::to_string(kind);
    }
    EXPECT_GT(injected, 0) << robust::to_string(kind);
  }
}

}  // namespace
