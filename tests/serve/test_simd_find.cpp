// The blocked multiway search kernel (serve/simd_find.hpp) is the flat
// hot path's inner loop, so its contract is pinned differentially: for
// every layout the builder can emit — random, duplicated, all-equal,
// lane-boundary-sized, empty — every dispatch (scalar and, where the cpu
// has it, AVX2) must return exactly std::lower_bound's rank, and the
// grouped lockstep kernel must agree with the one-query kernel slot for
// slot.  A build with -DCOOPSEARCH_DISABLE_SIMD=ON runs the same suite
// with dispatch_is_avx2() pinned false.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "catalog/tree.hpp"
#include "fc/build.hpp"
#include "serve/flat_cascade.hpp"
#include "serve/simd_find.hpp"

namespace {

namespace simd = serve::simd;
using cat::Key;

/// Restore the runtime dispatch no matter how the test exits.
struct ForceScalar {
  explicit ForceScalar(bool v) { simd::set_force_scalar(v); }
  ~ForceScalar() { simd::set_force_scalar(false); }
};

struct Layout {
  std::vector<Key> keys;       ///< ascending (duplicates allowed)
  std::vector<Key> slot_keys;  ///< blocked multiway slots
  std::vector<std::uint32_t> slot_pos;
};

Layout make_layout(std::vector<Key> keys) {
  Layout l;
  l.keys = std::move(keys);
  const auto n = static_cast<std::uint32_t>(l.keys.size());
  l.slot_keys.resize(simd::num_slots(n));
  l.slot_pos.resize(simd::num_slots(n));
  simd::build_layout(l.keys.data(), n, l.slot_keys.data(), l.slot_pos.data());
  return l;
}

std::uint32_t oracle_rank(const std::vector<Key>& keys, Key y) {
  return static_cast<std::uint32_t>(
      std::lower_bound(keys.begin(), keys.end(), y) - keys.begin());
}

/// The probe set for one layout: every key, its neighbors, the extremes,
/// and a fistful of random values.
std::vector<Key> probes(const std::vector<Key>& keys, std::mt19937_64& rng) {
  std::vector<Key> ys = {std::numeric_limits<Key>::min(),
                         std::numeric_limits<Key>::min() + 1,
                         -1,
                         0,
                         1,
                         std::numeric_limits<Key>::max() - 1,
                         std::numeric_limits<Key>::max(),
                         cat::kInfinity};
  for (const Key k : keys) {
    ys.push_back(k);
    if (k > std::numeric_limits<Key>::min()) ys.push_back(k - 1);
    if (k < std::numeric_limits<Key>::max()) ys.push_back(k + 1);
  }
  for (int i = 0; i < 32; ++i) {
    ys.push_back(static_cast<Key>(rng()));
  }
  return ys;
}

void expect_layout_exact(const Layout& l, std::mt19937_64& rng) {
  const auto n = static_cast<std::uint32_t>(l.keys.size());
  ASSERT_TRUE(simd::check_layout(l.keys.data(), n, l.slot_keys.data(),
                                 l.slot_pos.data()));
  for (const Key y : probes(l.keys, rng)) {
    const std::uint32_t want = oracle_rank(l.keys, y);
    EXPECT_EQ(simd::lower_bound_scalar(l.slot_keys.data(), l.slot_pos.data(),
                                       n, y),
              want)
        << "scalar, n=" << n << " y=" << y;
    // The public dispatcher, whichever kernel the cpu picks.
    EXPECT_EQ(simd::lower_bound(l.slot_keys.data(), l.slot_pos.data(), n, y),
              want)
        << "dispatch=" << simd::dispatch_name() << ", n=" << n << " y=" << y;
  }
}

TEST(SimdFind, MatchesStdLowerBoundOnRandomStrictlyIncreasingKeys) {
  std::mt19937_64 rng(101);
  // Lane boundaries (8/9, 63/64/65, 72/73) and a spread of other sizes:
  // every branch of the implicit 9-ary descent gets exercised.
  for (const std::uint32_t n :
       {1u, 2u, 3u, 7u, 8u, 9u, 10u, 15u, 16u, 17u, 63u, 64u, 65u, 71u, 72u,
        73u, 80u, 100u, 128u, 200u, 729u}) {
    std::vector<Key> keys(n);
    Key at = static_cast<Key>(rng() % 1000);
    for (auto& k : keys) {
      k = at;
      at += 1 + static_cast<Key>(rng() % 50);
    }
    expect_layout_exact(make_layout(std::move(keys)), rng);
  }
}

TEST(SimdFind, MatchesStdLowerBoundWithDuplicateKeys) {
  std::mt19937_64 rng(202);
  for (const std::uint32_t n : {2u, 8u, 9u, 17u, 64u, 65u, 100u}) {
    std::vector<Key> keys(n);
    Key at = 0;
    for (auto& k : keys) {
      k = at;
      if (rng() % 3 != 0) {  // runs of equal keys are the common case
        at += 1 + static_cast<Key>(rng() % 4);
      }
    }
    expect_layout_exact(make_layout(std::move(keys)), rng);
  }
}

TEST(SimdFind, AllEqualKeysReturnFirstIndex) {
  std::mt19937_64 rng(303);
  for (const std::uint32_t n : {1u, 7u, 8u, 9u, 64u, 100u}) {
    expect_layout_exact(make_layout(std::vector<Key>(n, 42)), rng);
  }
}

TEST(SimdFind, EmptyCatalogYieldsRankZero) {
  // n == 0 has zero blocks; the kernel must return 0 without touching
  // the (null) slot arrays.
  EXPECT_EQ(simd::num_slots(0), 0u);
  EXPECT_EQ(simd::lower_bound(nullptr, nullptr, 0, 5), 0u);
  EXPECT_EQ(simd::lower_bound_scalar(nullptr, nullptr, 0, 5), 0u);
}

TEST(SimdFind, QueriesPastTheMaximumReturnN) {
  std::mt19937_64 rng(404);
  for (const std::uint32_t n : {1u, 8u, 9u, 65u}) {
    std::vector<Key> keys(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      keys[i] = static_cast<Key>(i) * 10;
    }
    const Layout l = make_layout(std::move(keys));
    EXPECT_EQ(simd::lower_bound(l.slot_keys.data(), l.slot_pos.data(), n,
                                static_cast<Key>(n) * 10 + 1),
              n);
    (void)rng;
  }
}

TEST(SimdFind, ScalarAndDispatchedKernelsAgreeEverywhere) {
  if (!simd::dispatch_is_avx2()) {
    GTEST_SKIP() << "no avx2 dispatch on this cpu/build; the dispatcher "
                    "already IS the scalar kernel";
  }
  std::mt19937_64 rng(505);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng() % 300);
    std::vector<Key> keys(n);
    Key at = static_cast<Key>(rng() % 100);
    for (auto& k : keys) {
      k = at;
      at += static_cast<Key>(rng() % 3);  // duplicates included
    }
    const Layout l = make_layout(std::move(keys));
    for (const Key y : probes(l.keys, rng)) {
      const std::uint32_t vec =
          simd::lower_bound(l.slot_keys.data(), l.slot_pos.data(), n, y);
      std::uint32_t scalar;
      {
        ForceScalar fs(true);
        scalar = simd::lower_bound(l.slot_keys.data(), l.slot_pos.data(), n, y);
      }
      ASSERT_EQ(vec, scalar) << "n=" << n << " y=" << y;
    }
  }
}

TEST(SimdFind, GroupedKernelMatchesSingleQueryKernel) {
  std::mt19937_64 rng(606);
  for (const std::size_t g : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                              std::size_t{64}}) {
    std::vector<Layout> layouts;
    std::vector<simd::GroupedQuery> qs(g);
    std::vector<std::uint32_t> want(g);
    for (std::size_t i = 0; i < g; ++i) {
      // Mixed catalog sizes, including empty descents mid-group.
      const std::uint32_t n =
          i % 7 == 3 ? 0 : 1 + static_cast<std::uint32_t>(rng() % 150);
      std::vector<Key> keys(n);
      Key at = 0;
      for (auto& k : keys) {
        k = at;
        at += 1 + static_cast<Key>(rng() % 9);
      }
      layouts.push_back(make_layout(std::move(keys)));
      const Layout& l = layouts.back();
      const Key y = static_cast<Key>(rng() % 1500);
      qs[i] = n == 0 ? simd::GroupedQuery{}
                     : simd::GroupedQuery{l.slot_keys.data(),
                                          l.slot_pos.data(), n, y};
      qs[i].y = y;
      want[i] = n == 0 ? 0u : oracle_rank(l.keys, y);
    }
    std::vector<std::uint32_t> got(g);
    simd::lower_bound_grouped(qs.data(), got.data(), g);
    for (std::size_t i = 0; i < g; ++i) {
      EXPECT_EQ(got[i], want[i]) << "g=" << g << " i=" << i;
    }
    ForceScalar fs(true);
    std::fill(got.begin(), got.end(), 0xFFFFFFFFu);
    simd::lower_bound_grouped(qs.data(), got.data(), g);
    for (std::size_t i = 0; i < g; ++i) {
      EXPECT_EQ(got[i], want[i]) << "scalar grouped, g=" << g << " i=" << i;
    }
  }
}

TEST(SimdFind, CheckLayoutRejectsAnyTampering) {
  std::vector<Key> keys(37);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<Key>(i) * 3 + 1;
  }
  Layout l = make_layout(keys);
  const auto n = static_cast<std::uint32_t>(keys.size());
  ASSERT_TRUE(simd::check_layout(keys.data(), n, l.slot_keys.data(),
                                 l.slot_pos.data()));
  for (std::size_t s = 0; s < l.slot_keys.size(); ++s) {
    Layout t = l;
    t.slot_keys[s] ^= 1;
    EXPECT_FALSE(simd::check_layout(keys.data(), n, t.slot_keys.data(),
                                    t.slot_pos.data()))
        << "key slot " << s;
    t = l;
    t.slot_pos[s] ^= 1;
    EXPECT_FALSE(simd::check_layout(keys.data(), n, t.slot_keys.data(),
                                    t.slot_pos.data()))
        << "pos slot " << s;
  }
  // A layout built for different n must not verify either.
  EXPECT_FALSE(simd::check_layout(keys.data(), n - 1, l.slot_keys.data(),
                                  l.slot_pos.data()));
}

TEST(SimdFind, DispatchNameReflectsForcedScalar) {
  const char* name = simd::dispatch_name();
  EXPECT_TRUE(std::string(name) == "avx2" || std::string(name) == "scalar");
  ForceScalar fs(true);
  EXPECT_STREQ(simd::dispatch_name(), "scalar");
  EXPECT_FALSE(simd::dispatch_is_avx2());
}

TEST(SimdFind, FlatCascadeFindAgreesWithBinaryReferenceOnEveryNode) {
  // find() descends the multiway layout, find_binary() the sorted pool;
  // they must agree for every node and query under both dispatches —
  // this is the same invariant the scrubber's differential sampler and
  // snapshot::open's structural check enforce in production.
  std::mt19937_64 rng(707);
  const auto tree =
      cat::make_balanced_binary(6, 3000, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree);
  auto flat_e = serve::FlatCascade::compile(s);
  ASSERT_TRUE(flat_e.ok());
  const serve::FlatCascade flat = flat_e.take();
  for (std::uint32_t v = 0; v < flat.num_nodes(); ++v) {
    for (int i = 0; i < 40; ++i) {
      const Key y = static_cast<Key>(rng() % 2'000'000'000) - 1'000'000'000;
      const std::uint32_t bin = flat.find_binary(v, y);
      EXPECT_EQ(flat.find(v, y), bin) << "node " << v << " y=" << y;
      {
        ForceScalar fs(true);
        EXPECT_EQ(flat.find(v, y), bin) << "scalar, node " << v << " y=" << y;
      }
      // The +inf terminal keeps every serving answer strictly inside the
      // node's slice.
      EXPECT_LT(bin, flat.node(v).key_count);
    }
  }
}

}  // namespace
