#include "serve/flat_cascade.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/batch.hpp"
#include "fc/search.hpp"
#include "helpers.hpp"
#include "robust/corrupt.hpp"

namespace {

using cat::CatalogShape;
using serve::FlatCascade;

/// Flat answers are *defined* by the sequential oracle: assert index-for-
/// index equality with fc::search_explicit, plus the brute-force catalog
/// find.
void expect_matches_oracle(const cat::Tree& t, const fc::Structure& s,
                           const FlatCascade& f, std::mt19937_64& rng,
                           int queries) {
  for (int qi = 0; qi < queries; ++qi) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto oracle = fc::search_explicit(s, path, y);
    const auto flat = f.search(path, y);
    ASSERT_EQ(flat.aug_index.size(), path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(flat.aug_index[i], oracle.aug_index[i])
          << "aug mismatch, query " << qi << " node " << i;
      ASSERT_EQ(flat.proper_index[i], oracle.proper_index[i])
          << "proper mismatch, query " << qi << " node " << i;
      ASSERT_EQ(flat.proper_index[i],
                test_helpers::brute_find(t, path[i], y));
    }
  }
}

TEST(FlatCascade, MatchesSequentialOracleOnBalancedTrees) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    std::mt19937_64 rng(seed);
    const auto t =
        cat::make_balanced_binary(8, 20000, CatalogShape::kRandom, rng);
    const auto s = fc::Structure::build(t);
    auto f = FlatCascade::compile(s);
    ASSERT_TRUE(f.ok()) << f.status().to_string();
    expect_matches_oracle(t, s, *f, rng, 200);
  }
}

TEST(FlatCascade, MatchesOracleOnRandomAndPathTrees) {
  std::mt19937_64 rng(7);
  const auto shapes = {CatalogShape::kUniform, CatalogShape::kRootHeavy,
                       CatalogShape::kLeafHeavy, CatalogShape::kSkewed};
  for (const auto shape : shapes) {
    const auto t = cat::make_random_tree(300, 5, 8000, shape, rng);
    const auto s = fc::Structure::build(t);
    auto f = FlatCascade::compile(s);
    ASSERT_TRUE(f.ok()) << f.status().to_string();
    expect_matches_oracle(t, s, *f, rng, 100);
  }
  const auto t = cat::make_path_tree(200, 5000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  auto f = FlatCascade::compile(s);
  ASSERT_TRUE(f.ok()) << f.status().to_string();
  expect_matches_oracle(t, s, *f, rng, 100);
}

TEST(FlatCascade, MatchesCoopSearchBatchResults) {
  std::mt19937_64 rng(11);
  const auto t =
      cat::make_balanced_binary(7, 10000, CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build(s);
  auto f = FlatCascade::compile(s);
  ASSERT_TRUE(f.ok());
  std::vector<coop::BatchQuery> queries(50);
  for (auto& q : queries) {
    q.path = test_helpers::random_root_leaf_path(t, rng);
    q.y = test_helpers::random_query(t, rng);
  }
  pram::Machine m(64);
  const auto batch = coop::coop_search_batch(cs, m, queries);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto flat = f->search(queries[qi].path, queries[qi].y);
    for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
      ASSERT_EQ(flat.proper_index[i], batch.results[qi].proper_index[i])
          << "flat vs coop batch, query " << qi << " node " << i;
    }
  }
}

TEST(FlatCascade, DegenerateShapes) {
  // Single node, non-empty catalog.
  {
    cat::Tree t(1);
    t.set_catalog(0, cat::Catalog::from_sorted_keys(
                         std::vector<cat::Key>{5, 10, 20}));
    t.finalize();
    const auto s = fc::Structure::build(t);
    auto f = FlatCascade::compile(s);
    ASSERT_TRUE(f.ok());
    const std::vector<cat::NodeId> path{0};
    for (cat::Key y : {-5, 5, 6, 10, 19, 20, 21}) {
      EXPECT_EQ(f->search(path, y).proper_index[0], t.catalog(0).find(y));
    }
  }
  // Single node, empty catalog (sentinel only).
  {
    cat::Tree t(1);
    t.finalize();
    const auto s = fc::Structure::build(t);
    auto f = FlatCascade::compile(s);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->search(std::vector<cat::NodeId>{0}, 42).proper_index[0], 0u);
  }
  // Every catalog empty in a small tree: bridges still well-defined
  // (terminal-only catalogs).
  {
    cat::Tree t(7);
    for (cat::NodeId v = 1; v < 7; ++v) {
      t.add_child((v - 1) / 2, v);
    }
    t.finalize();
    const auto s = fc::Structure::build(t);
    auto f = FlatCascade::compile(s);
    ASSERT_TRUE(f.ok());
    const std::vector<cat::NodeId> path{0, 1, 3};
    const auto r = f->search(path, 123);
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(r.proper_index[i], 0u);
    }
  }
  // Duplicate keys across catalogs (within a catalog keys are strictly
  // increasing; duplicates across parent/child exercise merge-dedup paths).
  {
    cat::Tree t(3);
    t.add_child(0, 1);
    t.add_child(0, 2);
    const std::vector<cat::Key> same{10, 20, 30, 40};
    t.set_catalog(0, cat::Catalog::from_sorted_keys(same));
    t.set_catalog(1, cat::Catalog::from_sorted_keys(same));
    t.set_catalog(2, cat::Catalog::from_sorted_keys(same));
    t.finalize();
    const auto s = fc::Structure::build(t);
    auto f = FlatCascade::compile(s);
    ASSERT_TRUE(f.ok());
    std::mt19937_64 rng(13);
    expect_matches_oracle(t, s, *f, rng, 50);
  }
}

TEST(FlatCascade, RejectsCorruptedStructures) {
  // Every fc-targeting fault class injected by robust::corrupt must be
  // rejected by the compiler with a Status — never crash, never compile a
  // poisoned arena.
  const robust::CorruptionKind kinds[] = {
      robust::CorruptionKind::kMissingTerminal,
      robust::CorruptionKind::kCrossingBridges,
      robust::CorruptionKind::kBridgeOutOfRange,
      robust::CorruptionKind::kWrongProper,
  };
  for (const auto kind : kinds) {
    int injected = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      std::mt19937_64 rng(100 + seed);
      const auto t =
          cat::make_balanced_binary(5, 2000, cat::CatalogShape::kRandom, rng);
      auto s = fc::Structure::build(t);
      const auto st = robust::corrupt(s, kind, seed);
      if (!st.ok()) {
        continue;  // structure too small/regular to host this fault
      }
      ++injected;
      const auto f = FlatCascade::compile(s);
      EXPECT_FALSE(f.ok()) << "compiled a structure corrupted with "
                           << robust::to_string(kind) << " seed " << seed;
    }
    EXPECT_GT(injected, 0) << robust::to_string(kind);
  }
}

TEST(FlatCascade, RejectsCorruptedTreeCatalog) {
  std::mt19937_64 rng(17);
  const auto t =
      cat::make_balanced_binary(5, 2000, cat::CatalogShape::kRandom, rng);
  auto broken = t;
  const auto s = fc::Structure::build(broken);
  // Corrupt the underlying tree catalog *after* the cascade is built: the
  // aug -> proper map the arena would bake in is now a lie, and the
  // compiler must catch it structurally rather than serve wrong answers.
  const auto st =
      robust::corrupt(broken, robust::CorruptionKind::kUnsortedCatalog, 3);
  ASSERT_TRUE(st.ok()) << st.to_string();
  const auto f = FlatCascade::compile(s);
  EXPECT_FALSE(f.ok());
}

TEST(FlatCascade, ValidatePathRejectsBadPaths) {
  std::mt19937_64 rng(19);
  const auto t =
      cat::make_balanced_binary(4, 500, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  auto f = FlatCascade::compile(s);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->validate_path(std::vector<cat::NodeId>{}).ok());
  EXPECT_FALSE(f->validate_path(std::vector<cat::NodeId>{1}).ok());
  EXPECT_FALSE(f->validate_path(std::vector<cat::NodeId>{0, 999}).ok());
  EXPECT_FALSE(f->validate_path(std::vector<cat::NodeId>{0, 4}).ok());
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  EXPECT_TRUE(f->validate_path(path).ok());
}

}  // namespace
