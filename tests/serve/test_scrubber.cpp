#include "serve/scrubber.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "fc/build.hpp"
#include "helpers.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using serve::Scrubber;
using serve::ScrubberOptions;
using snapshot::Registry;

struct Fixture {
  cat::Tree tree;
  std::string snap_path;

  explicit Fixture(std::uint64_t seed = 23) {
    std::mt19937_64 rng(seed);
    tree = cat::make_balanced_binary(5, 4000, cat::CatalogShape::kRandom, rng);
    const auto s = fc::Structure::build_checked(tree);
    EXPECT_TRUE(s.ok());
    auto f = serve::FlatCascade::compile(*s);
    EXPECT_TRUE(f.ok());
    snap_path = testing::TempDir() + "coop_scrubber.snap";
    EXPECT_TRUE(snapshot::write(*f, snap_path).ok());
  }
  ~Fixture() { std::remove(snap_path.c_str()); }

  /// Publish a fresh copy-on-write serving copy (stores never reach disk).
  void publish_writable(Registry& registry) const {
    auto snap =
        snapshot::open(snap_path, snapshot::OpenMode::kWritableCopy);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    registry.publish(snap.take());
  }

  [[nodiscard]] serve::ScrubOracle oracle() const {
    return [this](std::uint32_t node, cat::Key y) {
      return static_cast<std::uint32_t>(
          tree.catalog(cat::NodeId(node)).find(y));
    };
  }

  /// Extent of the kKeys section of the *current* (pristine) generation.
  static std::pair<std::uint64_t, std::uint64_t> keys_extent(
      const Registry& registry) {
    const Registry::Pin pin = registry.pin();
    const auto ext = snapshot::section_extent(pin.snapshot(),
                                              snapshot::SectionId::kKeys);
    EXPECT_TRUE(ext.ok()) << ext.status().to_string();
    return *ext;
  }
};

TEST(Scrubber, CleanPassesMarkTheGenerationGood) {
  const Fixture fx;
  Registry registry;
  Scrubber scrubber(registry, ScrubberOptions{}, fx.oracle());

  // Nothing published: a pass is a no-op, not an error.
  EXPECT_TRUE(scrubber.run_pass().ok());

  fx.publish_writable(registry);
  EXPECT_EQ(registry.last_known_good(), 0u);
  EXPECT_TRUE(scrubber.run_pass().ok());
  EXPECT_EQ(registry.last_known_good(), 1u);

  const auto stats = scrubber.stats();
  EXPECT_EQ(stats.passes, 2u);
  // The empty pass is not a "clean pass" of any generation.
  EXPECT_EQ(stats.clean_passes, 1u);
  EXPECT_EQ(stats.quarantines, 0u);
}

TEST(Scrubber, CrcRotQuarantinesAndRollsBack) {
  const Fixture fx;
  Registry registry;
  ScrubberOptions opts;
  opts.samples = 8;
  Scrubber scrubber(registry, opts, fx.oracle());

  // Two generations, both scrubbed good; the flip target is computed
  // while generation 2 is still pristine (section_extent re-runs the CRC
  // ladder itself).
  fx.publish_writable(registry);
  EXPECT_TRUE(scrubber.run_pass().ok());
  fx.publish_writable(registry);
  const auto [off, len] = Fixture::keys_extent(registry);
  ASSERT_GE(len, sizeof(cat::Key));
  EXPECT_TRUE(scrubber.run_pass().ok());
  EXPECT_EQ(registry.last_known_good(), 2u);

  // Flip one bit in the low byte of the final +inf key terminal of the
  // served copy: provably answer-preserving for in-range queries, yet
  // CRC-fatal — the leading-indicator case the scrubber exists for.
  {
    const Registry::Pin pin = registry.pin();
    unsigned char* bytes = pin.snapshot().mapping.mutable_data();
    ASSERT_NE(bytes, nullptr);
    bytes[off + len - sizeof(cat::Key)] ^= 0x01;
  }

  const auto st = scrubber.run_pass();
  EXPECT_EQ(st.code(), coop::StatusCode::kCorrupted)
      << st.to_string();
  EXPECT_NE(st.message().find("generation 2"), std::string::npos)
      << st.message();

  const auto stats = scrubber.stats();
  EXPECT_EQ(stats.crc_failures, 1u);
  EXPECT_EQ(stats.differential_failures, 0u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.last_bad_version, 2u);
  EXPECT_EQ(stats.last_rollback_to, 1u);

  // The registry now serves the reinstated generation, and the
  // quarantined one is no longer a rollback target.
  EXPECT_EQ(registry.current_version(), 1u);
  EXPECT_EQ(registry.last_known_good(), 1u);
}

TEST(Scrubber, DifferentialSamplingCatchesRotWhenCrcIsDisabled) {
  const Fixture fx;
  Registry registry;
  ScrubberOptions opts;
  opts.verify_crc = false;  // isolate the differential detector
  opts.samples = 32;
  Scrubber scrubber(registry, opts, fx.oracle());

  fx.publish_writable(registry);
  EXPECT_TRUE(scrubber.run_pass().ok());
  fx.publish_writable(registry);
  const auto [off, len] = Fixture::keys_extent(registry);
  ASSERT_GT(len, 2 * sizeof(cat::Key));
  EXPECT_TRUE(scrubber.run_pass().ok());

  // Rot the whole key pool (except the final +inf terminal) to 0x7F7F…:
  // every corrupted key is a huge positive value, so binary search stays
  // in bounds (memory-safe even under ASan) while nearly every sampled
  // find() answer detaches from the oracle.
  {
    const Registry::Pin pin = registry.pin();
    unsigned char* bytes = pin.snapshot().mapping.mutable_data();
    ASSERT_NE(bytes, nullptr);
    std::memset(bytes + off, 0x7F,
                static_cast<std::size_t>(len - sizeof(cat::Key)));
  }

  const auto st = scrubber.run_pass();
  EXPECT_EQ(st.code(), coop::StatusCode::kCorrupted) << st.to_string();
  EXPECT_NE(st.message().find("differential mismatch"), std::string::npos)
      << st.message();

  const auto stats = scrubber.stats();
  EXPECT_EQ(stats.crc_failures, 0u);
  EXPECT_EQ(stats.differential_failures, 1u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(registry.current_version(), 1u);
}

TEST(Scrubber, NoRollbackTargetIsAFailureCounterNotACrash) {
  const Fixture fx;
  Registry registry;
  Scrubber scrubber(registry, ScrubberOptions{}, fx.oracle());

  // Only one generation, never scrubbed before the rot: detection works
  // but there is nowhere to roll back to — keep serving, count it.
  fx.publish_writable(registry);
  const auto [off, len] = Fixture::keys_extent(registry);
  {
    const Registry::Pin pin = registry.pin();
    pin.snapshot().mapping.mutable_data()[off + len - sizeof(cat::Key)] ^=
        0x01;
  }
  EXPECT_EQ(scrubber.run_pass().code(), coop::StatusCode::kCorrupted);
  const auto stats = scrubber.stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(stats.rollback_failures, 1u);
  EXPECT_EQ(registry.current_version(), 1u);  // still serving
}

TEST(Scrubber, BackgroundThreadScrubsOnItsOwnCadence) {
  const Fixture fx;
  Registry registry;
  fx.publish_writable(registry);
  ScrubberOptions opts;
  opts.interval = std::chrono::milliseconds(2);
  Scrubber scrubber(registry, opts, fx.oracle());
  scrubber.start();
  scrubber.start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (scrubber.stats().clean_passes < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  scrubber.stop();
  scrubber.stop();  // idempotent
  EXPECT_GE(scrubber.stats().clean_passes, 3u);
  EXPECT_EQ(registry.last_known_good(), 1u);
}

}  // namespace
