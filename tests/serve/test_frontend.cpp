#include "serve/frontend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fc/build.hpp"
#include "helpers.hpp"
#include "snapshot/registry.hpp"

namespace {

using serve::BatchOptions;
using serve::BatchReport;
using serve::BreakerState;
using serve::ChaosHooks;
using serve::Frontend;
using serve::FrontendOptions;
using serve::HealthState;
using serve::OpenPolicy;
using serve::PathAnswer;
using serve::PathQuery;
using serve::QueryEngine;
using snapshot::Registry;
using snapshot::Snapshot;

struct Fixture {
  cat::Tree tree;
  Registry registry;
  std::vector<PathQuery> queries;
  std::vector<std::vector<std::uint32_t>> expected;

  explicit Fixture(std::size_t num_queries, std::uint64_t seed = 11) {
    std::mt19937_64 rng(seed);
    tree = cat::make_balanced_binary(6, 6000, cat::CatalogShape::kRandom, rng);
    const auto s = fc::Structure::build_checked(tree);
    EXPECT_TRUE(s.ok());
    auto f = serve::FlatCascade::compile(*s);
    EXPECT_TRUE(f.ok());
    registry.publish(Snapshot::in_memory(f.take()));
    queries.resize(num_queries);
    expected.resize(num_queries);
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      queries[qi].path = test_helpers::random_root_leaf_path(tree, rng);
      queries[qi].y = test_helpers::random_query(tree, rng);
      for (const cat::NodeId v : queries[qi].path) {
        expected[qi].push_back(static_cast<std::uint32_t>(
            tree.catalog(v).find(queries[qi].y)));
      }
    }
  }

  void expect_correct(const std::vector<PathAnswer>& out) const {
    ASSERT_EQ(out.size(), queries.size());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      ASSERT_EQ(out[qi].proper_index.size(), expected[qi].size());
      for (std::size_t i = 0; i < expected[qi].size(); ++i) {
        ASSERT_EQ(out[qi].proper_index[i], expected[qi][i])
            << "query " << qi << " node " << i;
      }
    }
  }
};

/// A 1 ns deadline with single-group shards: the parallel attempt cannot
/// finish in time, so the engine degrades deterministically.
BatchOptions squeeze() {
  BatchOptions b;
  b.deadline = std::chrono::nanoseconds(1);
  b.shard_size = 1;
  return b;
}

TEST(Frontend, ServesCleanBatchesWithEmptyAttemptTrailTail) {
  Fixture fx(100);
  QueryEngine engine(2);
  Frontend frontend(fx.registry, engine);

  std::vector<PathAnswer> out;
  BatchReport report;
  std::uint64_t version = 0;
  ASSERT_TRUE(
      frontend.serve_paths(fx.queries, out, &report, &version).ok());
  fx.expect_correct(out);
  EXPECT_EQ(version, 1u);
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_FALSE(report.attempts[0].degraded);
  EXPECT_EQ(report.attempts[0].backoff.count(), 0);
  EXPECT_EQ(frontend.health(), HealthState::kHealthy);
  EXPECT_EQ(frontend.stats().admitted, 1u);
}

TEST(Frontend, EmptyBatchIsServedWithoutTouchingTheEngine) {
  Fixture fx(0);
  QueryEngine engine(2);
  Frontend frontend(fx.registry, engine);
  std::vector<PathAnswer> out(3);  // stale content must be cleared
  ASSERT_TRUE(frontend.serve_paths({}, out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(Frontend, AdmissionShedsWhenBudgetExceeded) {
  Fixture fx(64);
  QueryEngine engine(2);
  FrontendOptions opts;
  opts.max_inflight = 1;
  Frontend frontend(fx.registry, engine, opts);

  // Block the first batch inside the serving kernel so it provably holds
  // the only in-flight slot while the second batch arrives.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  ChaosHooks hooks;
  hooks.on_item = [&](std::uint64_t, std::size_t item) {
    if (item != 0) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };

  std::vector<PathAnswer> blocked_out;
  std::thread holder([&] {
    ASSERT_TRUE(frontend
                    .serve_paths(fx.queries, blocked_out, nullptr, nullptr,
                                 nullptr, &hooks)
                    .ok());
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  std::vector<PathAnswer> out;
  const auto st = frontend.serve_paths(fx.queries, out);
  EXPECT_EQ(st.code(), coop::StatusCode::kResourceExhausted);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  fx.expect_correct(blocked_out);

  const auto stats = frontend.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  // Shedding is not degradation: the breaker never saw the shed batch.
  EXPECT_EQ(stats.breaker, BreakerState::kClosed);

  // The slot is free again.
  std::vector<PathAnswer> after;
  ASSERT_TRUE(frontend.serve_paths(fx.queries, after).ok());
  fx.expect_correct(after);
}

TEST(Frontend, RetryRecoversFromTransientWorkerThrow) {
  Fixture fx(64);
  QueryEngine engine(2);
  FrontendOptions opts;
  opts.max_retries = 2;
  opts.sleep_on_backoff = false;  // record the schedule, skip the naps
  Frontend frontend(fx.registry, engine, opts);

  std::atomic<bool> thrown{false};
  ChaosHooks hooks;
  hooks.on_item = [&](std::uint64_t, std::size_t item) {
    if (item == 1 && !thrown.exchange(true)) {
      throw std::runtime_error("transient chaos fault");
    }
  };

  std::vector<PathAnswer> out;
  BatchReport report;
  ASSERT_TRUE(frontend
                  .serve_paths(fx.queries, out, &report, nullptr, nullptr,
                               &hooks)
                  .ok());
  fx.expect_correct(out);

  // Attempt 0 degraded on the injected throw; attempt 1 (after a backoff
  // drawn from the deterministic schedule) ran clean.
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_TRUE(report.attempts[0].degraded);
  EXPECT_FALSE(report.attempts[0].reason.empty());
  EXPECT_EQ(report.attempts[0].backoff.count(), 0);
  EXPECT_FALSE(report.attempts[1].degraded);
  EXPECT_EQ(report.attempts[1].backoff,
            serve::backoff_for(opts, /*batch_seq=*/0, /*attempt=*/1));
  EXPECT_GT(report.attempts[1].backoff.count(), 0);

  const auto stats = frontend.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.degraded_batches, 0u);  // final attempt was clean
  EXPECT_EQ(stats.consecutive_degraded, 0u);
}

TEST(Frontend, BreakerTripsAndRecoversThroughProbe) {
  Fixture fx(64);
  QueryEngine engine(2);
  FrontendOptions opts;
  opts.max_retries = 0;
  opts.breaker_threshold = 2;
  opts.breaker_open_for = std::chrono::milliseconds(30);
  opts.open_policy = OpenPolicy::kShed;
  Frontend frontend(fx.registry, engine, opts);

  // Two consecutive finally-degraded batches trip CLOSED -> OPEN.
  const BatchOptions squeezed = squeeze();
  for (int i = 0; i < 2; ++i) {
    std::vector<PathAnswer> out;
    BatchReport report;
    ASSERT_TRUE(frontend
                    .serve_paths(fx.queries, out, &report, nullptr,
                                 &squeezed, nullptr)
                    .ok());
    fx.expect_correct(out);  // degraded, not wrong
    EXPECT_TRUE(report.degraded);
  }
  EXPECT_EQ(frontend.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(frontend.health(), HealthState::kLameDuck);
  EXPECT_EQ(frontend.stats().breaker_trips, 1u);

  // While OPEN under kShed, admitted traffic is refused with UNAVAILABLE.
  std::vector<PathAnswer> out;
  EXPECT_EQ(frontend.serve_paths(fx.queries, out).code(),
            coop::StatusCode::kUnavailable);
  EXPECT_GE(frontend.stats().shed_breaker, 1u);

  // After the open window, one probe rides the full engine and closes
  // the breaker again.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::vector<PathAnswer> probe_out;
  ASSERT_TRUE(frontend.serve_paths(fx.queries, probe_out).ok());
  fx.expect_correct(probe_out);
  EXPECT_EQ(frontend.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(frontend.health(), HealthState::kHealthy);
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);  // recovery is not a second trip
}

TEST(Frontend, OpenPolicySequentialKeepsServingCorrectAnswers) {
  Fixture fx(64);
  QueryEngine engine(2);
  FrontendOptions opts;
  opts.max_retries = 0;
  opts.breaker_threshold = 1;
  // Long open window: every batch in this test after the trip runs in
  // deterministic sequential-only mode, no probe races.
  opts.breaker_open_for = std::chrono::seconds(10);
  opts.open_policy = OpenPolicy::kSequential;
  Frontend frontend(fx.registry, engine, opts);

  std::vector<PathAnswer> out;
  const BatchOptions squeezed = squeeze();
  ASSERT_TRUE(frontend
                  .serve_paths(fx.queries, out, nullptr, nullptr, &squeezed,
                               nullptr)
                  .ok());
  EXPECT_EQ(frontend.breaker_state(), BreakerState::kOpen);

  // OPEN + kSequential: still admitted, still correct, marked as a
  // sequential batch, and the breaker holds its state.
  std::vector<PathAnswer> seq_out;
  BatchReport report;
  ASSERT_TRUE(frontend.serve_paths(fx.queries, seq_out, &report).ok());
  fx.expect_correct(seq_out);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(frontend.stats().sequential_batches, 1u);
  EXPECT_EQ(frontend.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(frontend.health(), HealthState::kLameDuck);
}

// Satellite 4: the retry/backoff schedule is a pure function of the seed.
// Two frontends with identical options, fed the identical fault script,
// must record byte-identical attempt trails — including the jittered
// backoff values — and a different seed must diverge.
TEST(Frontend, BackoffScheduleIsDeterministicPerSeed) {
  FrontendOptions opts;
  opts.jitter_seed = 42;
  for (std::uint64_t seq : {0ull, 1ull, 17ull}) {
    for (std::uint32_t attempt : {1u, 2u, 3u}) {
      EXPECT_EQ(serve::backoff_for(opts, seq, attempt),
                serve::backoff_for(opts, seq, attempt));
      const auto b = serve::backoff_for(opts, seq, attempt);
      EXPECT_GE(b.count(), opts.backoff_base.count() / 2);
      EXPECT_LE(b, opts.backoff_cap);
    }
  }
  FrontendOptions other = opts;
  other.jitter_seed = 43;
  EXPECT_NE(serve::backoff_for(opts, 0, 1), serve::backoff_for(other, 0, 1));

  Fixture fx(48);
  const auto run_scripted = [&fx](std::uint64_t seed) {
    // One engine thread: every attempt runs inline, so each attempt hits
    // exactly one scripted fault and the trail shape is deterministic.
    QueryEngine engine(1);
    FrontendOptions fo;
    fo.max_retries = 3;
    fo.jitter_seed = seed;
    fo.sleep_on_backoff = false;
    Frontend frontend(fx.registry, engine, fo);
    // Scripted fault: the first two attempts of the batch each hit one
    // injected throw, the third runs clean.
    std::atomic<int> faults_left{2};
    ChaosHooks hooks;
    hooks.on_item = [&](std::uint64_t, std::size_t item) {
      if (item == 0 && faults_left.load() > 0) {
        faults_left.fetch_sub(1);
        throw std::runtime_error("scripted fault");
      }
    };
    std::vector<PathAnswer> out;
    BatchReport report;
    EXPECT_TRUE(frontend
                    .serve_paths(fx.queries, out, &report, nullptr, nullptr,
                                 &hooks)
                    .ok());
    fx.expect_correct(out);
    return report;
  };

  const BatchReport a = run_scripted(7);
  const BatchReport b = run_scripted(7);
  const BatchReport c = run_scripted(8);
  ASSERT_EQ(a.attempts.size(), 3u);
  ASSERT_EQ(b.attempts.size(), 3u);
  for (std::size_t i = 0; i < a.attempts.size(); ++i) {
    EXPECT_EQ(a.attempts[i].attempt, b.attempts[i].attempt);
    EXPECT_EQ(a.attempts[i].degraded, b.attempts[i].degraded);
    EXPECT_EQ(a.attempts[i].backoff, b.attempts[i].backoff) << "attempt " << i;
  }
  ASSERT_EQ(c.attempts.size(), 3u);
  EXPECT_NE(a.attempts[1].backoff, c.attempts[1].backoff)
      << "different jitter seeds must decorrelate the schedules";
}

TEST(Frontend, UnavailableWhenNothingIsPublished) {
  Registry empty;
  QueryEngine engine(1);
  Frontend frontend(empty, engine);
  std::vector<PathQuery> queries(1);
  queries[0].y = 5;
  std::vector<PathAnswer> out;
  EXPECT_EQ(frontend.serve_paths(queries, out).code(),
            coop::StatusCode::kUnavailable);
}

}  // namespace
