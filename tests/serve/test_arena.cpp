// The arena allocation layer under the serving pools: raw_alloc's
// huge-page policy, Pool's owning/view/huge-backed states, the BumpArena
// used for build scratch and per-batch answer sets, and the arena-backed
// batch API (PathAnswerSet + serve_path_queries_flat) pinned against the
// vector-returning reference implementation.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "catalog/tree.hpp"
#include "fc/build.hpp"
#include "serve/arena.hpp"
#include "serve/flat_cascade.hpp"
#include "serve/query_engine.hpp"

namespace {

TEST(RawAlloc, SmallAllocationsAreAlignedAndZero) {
  serve::RawAlloc a = serve::raw_alloc(serve::kCacheLine);
  ASSERT_NE(a.ptr, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.ptr) % serve::kCacheLine, 0u);
  EXPECT_EQ(a.map_bytes, 0u);  // below the huge-page threshold
  const auto* p = static_cast<const unsigned char*>(a.ptr);
  for (std::size_t i = 0; i < serve::kCacheLine; ++i) {
    ASSERT_EQ(p[i], 0u);
  }
  serve::raw_free(a);
  EXPECT_EQ(a.ptr, nullptr);
}

TEST(RawAlloc, LargeAllocationsUseTheHugePagePath) {
  const std::size_t bytes = serve::kHugePageBytes;
  serve::RawAlloc a = serve::raw_alloc(bytes);
  ASSERT_NE(a.ptr, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.ptr) % serve::kCacheLine, 0u);
#if defined(__linux__)
  EXPECT_EQ(a.map_bytes, bytes);  // mmap-backed, MADV_HUGEPAGE advised
#endif
  // Anonymous mappings are zero by contract; spot-check both ends.
  auto* p = static_cast<unsigned char*>(a.ptr);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[bytes - 1], 0u);
  p[0] = 0xAB;  // writable
  p[bytes - 1] = 0xCD;
  serve::raw_free(a);
}

TEST(Pool, HugeBackingFollowsTheSizeThreshold) {
  serve::Pool<std::int64_t> small(100);
  EXPECT_TRUE(small.owns());
  EXPECT_FALSE(small.huge_backed());

  const std::size_t big_elems = serve::kHugePageBytes / sizeof(std::int64_t);
  serve::Pool<std::int64_t> big(big_elems);
  EXPECT_TRUE(big.owns());
#if defined(__linux__)
  EXPECT_TRUE(big.huge_backed());
#endif
  big[0] = 7;
  big[big_elems - 1] = 9;
  EXPECT_EQ(big[0], 7);
  EXPECT_EQ(big[big_elems - 1], 9);

  serve::Pool<std::int64_t> moved = std::move(big);
  EXPECT_TRUE(moved.owns());
  EXPECT_EQ(moved[0], 7);

  const std::int64_t backing[4] = {1, 2, 3, 4};
  auto view = serve::Pool<std::int64_t>::view(backing, 4);
  EXPECT_FALSE(view.owns());
  EXPECT_FALSE(view.huge_backed());
  EXPECT_EQ(view[2], 3);
}

TEST(BumpArena, AllocationsAreAlignedDisjointAndReusedAfterReset) {
  serve::BumpArena arena(1 << 12);  // small chunks force chunk growth
  std::vector<std::uint32_t*> ptrs;
  for (int i = 0; i < 32; ++i) {
    std::uint32_t* p = arena.alloc<std::uint32_t>(100 + i);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % serve::kCacheLine, 0u);
    std::memset(p, i + 1, (100 + i) * sizeof(std::uint32_t));
    ptrs.push_back(p);
  }
  // Disjointness: every slice still holds its own fill pattern.
  for (int i = 0; i < 32; ++i) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(ptrs[i]);
    for (std::size_t b = 0; b < (100 + i) * sizeof(std::uint32_t); ++b) {
      ASSERT_EQ(bytes[b], static_cast<unsigned char>(i + 1))
          << "slice " << i << " byte " << b;
    }
  }
  const std::size_t reserved = arena.reserved_bytes();
  EXPECT_GT(reserved, 0u);
  // Same fill cycle after reset: no new chunks.
  arena.reset();
  for (int i = 0; i < 32; ++i) {
    (void)arena.alloc<std::uint32_t>(100 + i);
  }
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(BumpArena, ZeroLengthAndOversizedAllocationsWork) {
  serve::BumpArena arena(1 << 12);
  std::uint64_t* empty = arena.alloc<std::uint64_t>(0);
  ASSERT_NE(empty, nullptr);  // valid, unique, never dereferenced
  // Larger than the chunk size: gets its own chunk.
  const std::size_t big = (1 << 14) / sizeof(std::uint64_t);
  std::uint64_t* p = arena.alloc<std::uint64_t>(big);
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[big - 1], 2u);
}

TEST(PathAnswerSet, MatchesTheVectorApiAcrossReuse) {
  std::mt19937_64 rng(99);
  const auto tree =
      cat::make_balanced_binary(6, 4000, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree);
  auto flat_e = serve::FlatCascade::compile(s);
  ASSERT_TRUE(flat_e.ok());
  const serve::FlatCascade flat = flat_e.take();

  serve::QueryEngine engine(2);
  serve::PathAnswerSet set;
  // Three batches through ONE answer set: correctness must survive the
  // arena rewind, including a batch bigger than the previous one.
  for (const std::size_t batch : {std::size_t{33}, std::size_t{200},
                                  std::size_t{64}}) {
    std::vector<serve::PathQuery> queries(batch);
    for (auto& q : queries) {
      std::vector<cat::NodeId> path{tree.root()};
      while (!tree.is_leaf(path.back())) {
        const auto kids = tree.children(path.back());
        path.push_back(kids[rng() % kids.size()]);
      }
      q.path = std::move(path);
      q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
    }
    std::vector<serve::PathAnswer> want;
    const auto rep_v = serve::serve_path_queries(flat, engine, queries, want);
    EXPECT_FALSE(rep_v.degraded) << rep_v.reason;
    const auto rep_f =
        serve::serve_path_queries_flat(flat, engine, queries, set);
    EXPECT_FALSE(rep_f.degraded) << rep_f.reason;
    ASSERT_EQ(set.size(), batch);
    for (std::size_t q = 0; q < batch; ++q) {
      ASSERT_EQ(set.aug(q).size(), want[q].aug_index.size());
      for (std::size_t i = 0; i < want[q].aug_index.size(); ++i) {
        ASSERT_EQ(set.aug(q)[i], want[q].aug_index[i])
            << "batch " << batch << " q " << q << " hop " << i;
        ASSERT_EQ(set.proper(q)[i], want[q].proper_index[i])
            << "batch " << batch << " q " << q << " hop " << i;
      }
    }
  }
}

}  // namespace
