#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "pram/machine.hpp"
#include "pram/memory.hpp"

namespace {

using pram::Engine;
using pram::Machine;
using pram::Model;

constexpr auto kNoDeadline = std::chrono::nanoseconds{0};

TEST(Degradation, CleanRunIsNotDegraded) {
  pram::RunReport report;
  const int result = pram::run_resilient(
      4, Model::kCrew, Engine::kSequential, kNoDeadline,
      [](Machine& m) {
        int sum = 0;
        m.exec(4, [&](std::size_t pid) { sum += int(pid); });
        return sum;
      },
      &report);
  EXPECT_EQ(result, 6);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.reason.empty());
  EXPECT_EQ(report.stats.degradations, 0u);
}

TEST(Degradation, AuditViolationTriggersSequentialRerun) {
  pram::RunReport report;
  const int result = pram::run_resilient(
      4, Model::kCrew, Engine::kSequential, kNoDeadline,
      [](Machine& m) {
        pram::SharedArray<int> a(1);
        a.enable_audit(&m, "a");
        // CREW violation: every processor writes the same cell.
        m.exec(4, [&](std::size_t pid) { a.write(0, int(pid)); });
        return a[0];
      },
      &report);
  EXPECT_EQ(result, 3);  // deterministic sequential rerun: last pid wins
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.reason.find("audit violation"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.stats.degradations, 1u);
  EXPECT_GT(report.abandoned_stats.violations, 0u);
}

TEST(Degradation, WorkerExceptionTriggersSequentialRerun) {
  pram::RunReport report;
  const int result = pram::run_resilient(
      4, Model::kCrew, Engine::kThreads, kNoDeadline,
      [](Machine& m) {
        if (m.engine() == Engine::kThreads) {
          m.exec(4, [](std::size_t pid) {
            if (pid == 2) {
              throw std::runtime_error("simulated worker fault");
            }
          });
        }
        return 42;
      },
      &report);
  EXPECT_EQ(result, 42);
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.reason.find("worker exception"), std::string::npos)
      << report.reason;
  EXPECT_NE(report.reason.find("simulated worker fault"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.stats.degradations, 1u);
}

TEST(Degradation, DeadlineTriggersSequentialRerun) {
  pram::RunReport report;
  const int result = pram::run_resilient(
      2, Model::kCrew, Engine::kSequential, std::chrono::nanoseconds{1},
      [](Machine& m) {
        // Give the 1ns watchdog time to expire, then issue instructions.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        int sum = 0;
        for (int i = 0; i < 100; ++i) {
          m.exec(2, [&](std::size_t pid) { sum += int(pid); });
        }
        return sum;
      },
      &report);
  EXPECT_EQ(result, 100);
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.reason.find("deadline"), std::string::npos)
      << report.reason;
  EXPECT_EQ(report.stats.degradations, 1u);
}

TEST(Degradation, ThreadedDeadlineAlsoFallsBack) {
  pram::RunReport report;
  const int result = pram::run_resilient(
      4, Model::kCrew, Engine::kThreads, std::chrono::nanoseconds{1},
      [](Machine& m) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        int x = 0;
        m.exec(1, [&](std::size_t) { x = 7; });
        return x;
      },
      &report);
  EXPECT_EQ(result, 7);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.stats.degradations, 1u);
}

TEST(Degradation, FallbackMachineRecordsTheReason) {
  Machine m(2);
  m.note_degradation("test reason");
  EXPECT_EQ(m.stats().degradations, 1u);
  ASSERT_FALSE(m.diagnostics().empty());
  EXPECT_NE(m.diagnostics().back().find("test reason"), std::string::npos);
}

TEST(Audit, RefusedUnderThreadEngineWithDiagnostic) {
  Machine m(4, Model::kCrew, Engine::kThreads);
  EXPECT_FALSE(m.audit_supported());
  pram::SharedArray<int> a(8);
  EXPECT_FALSE(a.enable_audit(&m, "a"));
  EXPECT_FALSE(a.audit_enabled());
  ASSERT_FALSE(m.diagnostics().empty());
  EXPECT_NE(m.diagnostics().back().find("audit disabled"), std::string::npos);
  // Unaudited accesses under the thread engine remain safe.
  m.exec(8, [&](std::size_t pid) { a.write(pid, int(pid)); });
  EXPECT_EQ(a[5], 5);
  EXPECT_EQ(m.stats().violations, 0u);
}

TEST(Audit, SequentialEngineStillAudits) {
  Machine m(4);
  EXPECT_TRUE(m.audit_supported());
  pram::SharedArray<int> a(1);
  EXPECT_TRUE(a.enable_audit(&m, "a"));
  EXPECT_TRUE(a.audit_enabled());
  m.exec(2, [&](std::size_t pid) { a.write(0, int(pid)); });
  EXPECT_GT(m.stats().violations, 0u);
}

TEST(Audit, ViolationLogIsBoundedButCountIsNot) {
  Machine m(64);
  pram::SharedArray<int> a(64);
  a.enable_audit(&m, "a");
  // 40 distinct double-write conflicts: one per cell.
  m.exec(80, [&](std::size_t pid) { a.write(pid % 40, int(pid)); });
  EXPECT_EQ(m.stats().violations, 40u);
  EXPECT_EQ(m.violations_seen().size(), Machine::kMaxViolationLog);
  EXPECT_FALSE(m.first_violation().empty());
  EXPECT_EQ(m.violations_seen().front(), m.first_violation());
}

TEST(Deadline, ExpiredDeadlineThrowsFromExec) {
  Machine m(2);
  m.set_deadline(std::chrono::nanoseconds{1});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_THROW(m.exec(2, [](std::size_t) {}), pram::DeadlineExceeded);
  m.clear_deadline();
  EXPECT_NO_THROW(m.exec(2, [](std::size_t) {}));
}

TEST(Deadline, UnarmedMachineNeverExpires) {
  Machine m(2);
  EXPECT_FALSE(m.deadline_expired());
  EXPECT_NO_THROW(m.exec(2, [](std::size_t) {}));
}

TEST(Stats, DegradationsAggregateAcrossStepStats) {
  pram::StepStats a, b;
  a.degradations = 1;
  b.degradations = 2;
  a += b;
  EXPECT_EQ(a.degradations, 3u);
}

}  // namespace
