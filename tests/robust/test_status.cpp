#include "robust/status.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace {

TEST(Status, DefaultIsOk) {
  coop::Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), coop::StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
  EXPECT_TRUE(coop::OkStatus().ok());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const auto s = coop::Status::invalid_argument("bad tree");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), coop::StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tree");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad tree");
}

TEST(Status, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(coop::Status::failed_precondition("x").code(),
            coop::StatusCode::kFailedPrecondition);
  EXPECT_EQ(coop::Status::corrupted("x").code(),
            coop::StatusCode::kCorrupted);
  EXPECT_EQ(coop::Status::deadline_exceeded("x").code(),
            coop::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(coop::Status::internal("x").code(), coop::StatusCode::kInternal);
  EXPECT_EQ(coop::Status::resource_exhausted("x").code(),
            coop::StatusCode::kResourceExhausted);
  EXPECT_EQ(coop::Status::unavailable("x").code(),
            coop::StatusCode::kUnavailable);
  EXPECT_EQ(coop::Status::permission_denied("x").code(),
            coop::StatusCode::kPermissionDenied);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(coop::to_string(coop::StatusCode::kOk), "OK");
  EXPECT_STREQ(coop::to_string(coop::StatusCode::kCorrupted), "CORRUPTED");
  EXPECT_STREQ(coop::to_string(coop::StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(coop::to_string(coop::StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(coop::to_string(coop::StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(coop::to_string(coop::StatusCode::kPermissionDenied),
               "PERMISSION_DENIED");
}

TEST(Status, NumericValuesAreTheCliContract) {
  // Appended codes must never renumber the existing ones.
  EXPECT_EQ(static_cast<int>(coop::StatusCode::kInternal), 5);
  EXPECT_EQ(static_cast<int>(coop::StatusCode::kResourceExhausted), 6);
  EXPECT_EQ(static_cast<int>(coop::StatusCode::kUnavailable), 7);
  EXPECT_EQ(static_cast<int>(coop::StatusCode::kPermissionDenied), 8);
}

TEST(Expected, HoldsValue) {
  coop::Expected<int> e(7);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(*e, 7);
  EXPECT_TRUE(e.status().ok());
}

TEST(Expected, HoldsStatus) {
  coop::Expected<int> e(coop::Status::corrupted("broken"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), coop::StatusCode::kCorrupted);
  EXPECT_EQ(e.status().message(), "broken");
}

TEST(Expected, WorksWithMoveOnlyTypes) {
  coop::Expected<std::unique_ptr<std::string>> e(
      std::make_unique<std::string>("payload"));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(**e, "payload");
  auto taken = e.take();
  EXPECT_EQ(*taken, "payload");
}

TEST(Expected, ArrowDereferencesValue) {
  coop::Expected<std::string> e(std::string("abc"));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size(), 3u);
}

}  // namespace
