#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "catalog/tree.hpp"
#include "core/structure.hpp"
#include "fc/build.hpp"
#include "geom/generators.hpp"
#include "pointloc/separator_tree.hpp"
#include "range/point_enclosure.hpp"
#include "range/range_tree.hpp"
#include "range/segment_tree.hpp"
#include "robust/loaders.hpp"
#include "robust/validate.hpp"

namespace {

cat::Tree good_tree(std::uint64_t seed = 7, std::uint32_t height = 4,
                    std::size_t entries = 200) {
  std::mt19937_64 rng(seed);
  return cat::make_balanced_binary(height, entries,
                                   cat::CatalogShape::kRandom, rng);
}

// ---------------------------------------------------------------- fc

TEST(FcBuildChecked, AcceptsValidTree) {
  const auto t = good_tree();
  const auto s = fc::Structure::build_checked(t);
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  EXPECT_TRUE(robust::validate_fc(*s).ok());
}

TEST(FcBuildChecked, RejectsEmptyTree) {
  const cat::Tree t;
  const auto s = fc::Structure::build_checked(t);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), coop::StatusCode::kInvalidArgument);
}

TEST(FcBuildChecked, RejectsUnsortedCatalog) {
  auto t = good_tree();
  const std::vector<cat::Key> bad{30, 10, 20};
  const std::vector<std::uint64_t> pay{0, 1, 2};
  t.set_catalog(t.root(), cat::Catalog::from_sorted(bad, pay));
  const auto s = fc::Structure::build_checked(t);
  ASSERT_FALSE(s.ok());
}

TEST(FcBuildChecked, RejectsSamplingFactorBelowDegree) {
  const auto t = good_tree();  // binary: max_degree == 2
  const auto s = fc::Structure::build_checked(t, 2);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), coop::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- coop

TEST(CoopBuildChecked, AcceptsValidStructure) {
  const auto t = good_tree();
  const auto s = fc::Structure::build(t);
  const auto cs = coop::CoopStructure::build_checked(s);
  ASSERT_TRUE(cs.ok()) << cs.status().to_string();
  EXPECT_TRUE(robust::validate(*cs).ok());
}

TEST(CoopBuildChecked, RejectsBadAlphaScale) {
  const auto t = good_tree();
  const auto s = fc::Structure::build(t);
  EXPECT_FALSE(coop::CoopStructure::build_checked(s, 0.25).ok());
  EXPECT_FALSE(coop::CoopStructure::build_checked(s, 1000.0).ok());
  EXPECT_FALSE(coop::CoopStructure::build_checked(s, std::nan("")).ok());
}

TEST(CoopBuildChecked, RejectsStructurallyBrokenCascade) {
  const auto t = good_tree();
  const auto s = fc::Structure::build(t);
  // Rebuild with a truncated proper[] array on the root.
  std::vector<fc::AugCatalog> aug;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    aug.push_back(s.aug(cat::NodeId(v)));
  }
  aug[0].proper.pop_back();
  const auto broken = fc::Structure::from_parts(t, s.sample_k(),
                                                std::move(aug));
  const auto cs = coop::CoopStructure::build_checked(broken);
  ASSERT_FALSE(cs.ok());
  EXPECT_EQ(cs.status().code(), coop::StatusCode::kCorrupted);
}

// ---------------------------------------------------------------- pointloc

TEST(SeparatorTreeBuildChecked, AcceptsValidSubdivision) {
  std::mt19937_64 rng(3);
  const auto sub = geom::make_random_monotone(8, 4, rng);
  auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_TRUE(st.ok()) << st.status().to_string();
  EXPECT_TRUE(robust::validate(*st).ok());
}

TEST(SeparatorTreeBuildChecked, RejectsUncoveredSeparator) {
  geom::MonotoneSubdivision sub;
  sub.num_regions = 2;  // one separator, zero edges: never covered
  sub.ymin = 0;
  sub.ymax = 100;
  const auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_FALSE(st.ok());
}

TEST(SeparatorTreeBuildChecked, RejectsOversizedCoordinates) {
  auto sub = geom::make_slabs(4, 2);
  sub.edges[0].hi.x = geom::kCoordLimit + 1;
  const auto st = pointloc::SeparatorTree::build_checked(sub);
  ASSERT_FALSE(st.ok());
}

// ---------------------------------------------------------------- range

TEST(RangeTreeBuildChecked, RejectsOversizedCoordinates) {
  std::vector<range::Point2> pts{{1, 2}, {cat::kInfinity / 2, 3}};
  const auto rt = range::RangeTree2D::build_checked(std::move(pts));
  ASSERT_FALSE(rt.ok());
  EXPECT_EQ(rt.status().code(), coop::StatusCode::kInvalidArgument);
}

TEST(RangeTreeBuildChecked, AcceptsValidPoints) {
  std::vector<range::Point2> pts{{1, 2}, {5, -3}, {9, 4}};
  auto rt = range::RangeTree2D::build_checked(std::move(pts));
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
}

TEST(SegmentTreeBuildChecked, RejectsDegenerateSpan) {
  std::vector<range::VSegment> segs{{5, 10, 10}};
  const auto st = range::SegmentIntersectionTree::build_checked(
      std::move(segs));
  ASSERT_FALSE(st.ok());
}

TEST(SegmentTreeBuildChecked, RejectsOversizedCoordinates) {
  std::vector<range::VSegment> segs{{cat::kInfinity / 2, 0, 10}};
  const auto st = range::SegmentIntersectionTree::build_checked(
      std::move(segs));
  ASSERT_FALSE(st.ok());
}

TEST(SegmentTreeBuildChecked, AcceptsValidSegments) {
  std::vector<range::VSegment> segs{{5, 0, 10}, {7, -4, 2}};
  auto st = range::SegmentIntersectionTree::build_checked(std::move(segs));
  ASSERT_TRUE(st.ok()) << st.status().to_string();
}

TEST(PointEnclosureBuildChecked, RejectsDegenerateRect) {
  std::vector<range::Rect> rects{{10, 5, 0, 1}};  // x1 > x2
  const auto pe = range::PointEnclosureTree::build_checked(std::move(rects));
  ASSERT_FALSE(pe.ok());
}

TEST(PointEnclosureBuildChecked, AcceptsValidRects) {
  std::vector<range::Rect> rects{{0, 10, 0, 10}, {-5, 5, 2, 8}};
  auto pe = range::PointEnclosureTree::build_checked(std::move(rects));
  ASSERT_TRUE(pe.ok()) << pe.status().to_string();
}

// ---------------------------------------------------------------- loaders

TEST(LoadTree, RoundTripsAValidFile) {
  std::istringstream in("3\n-1 2 10 20\n0 1 5\n0 0\n");
  auto t = robust::load_tree(in);
  ASSERT_TRUE(t.ok()) << t.status().to_string();
  EXPECT_EQ(t->num_nodes(), 3u);
  EXPECT_EQ(t->catalog(0).real_size(), 2u);
  EXPECT_TRUE(robust::validate_tree(*t).ok());
}

TEST(LoadTree, RejectsGarbageHeader) {
  std::istringstream in("banana\n");
  EXPECT_FALSE(robust::load_tree(in).ok());
}

TEST(LoadTree, RejectsTruncatedFile) {
  std::istringstream in("3\n-1 2 10 20\n0 1\n");
  EXPECT_FALSE(robust::load_tree(in).ok());
}

TEST(LoadTree, RejectsDanglingParent) {
  std::istringstream in("2\n-1 0\n5 0\n");
  EXPECT_FALSE(robust::load_tree(in).ok());
}

TEST(LoadTree, RejectsUnsortedKeys) {
  std::istringstream in("1\n-1 3 30 10 20\n");
  EXPECT_FALSE(robust::load_tree(in).ok());
}

TEST(LoadTree, RejectsAllocationBombHeader) {
  std::istringstream in("99999999999999\n");
  const auto t = robust::load_tree(in);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), coop::StatusCode::kInvalidArgument);
}

TEST(LoadTree, RejectsSentinelKey) {
  std::istringstream in("1\n-1 1 9223372036854775807\n");
  EXPECT_FALSE(robust::load_tree(in).ok());
}

std::string serialize(const geom::MonotoneSubdivision& sub) {
  std::ostringstream out;
  out << sub.num_regions << " " << sub.ymin << " " << sub.ymax << " "
      << sub.edges.size() << "\n";
  for (const auto& e : sub.edges) {
    out << e.lo.x << " " << e.lo.y << " " << e.hi.x << " " << e.hi.y << " "
        << e.min_sep << " " << e.max_sep << "\n";
  }
  return out.str();
}

TEST(LoadSubdivision, RoundTripsAGeneratedSubdivision) {
  std::mt19937_64 rng(11);
  const auto sub = geom::make_random_monotone(6, 3, rng);
  std::istringstream in(serialize(sub));
  auto loaded = robust::load_subdivision(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->num_regions, sub.num_regions);
  EXPECT_EQ(loaded->edges.size(), sub.edges.size());
  EXPECT_TRUE(robust::validate_subdivision(*loaded).ok());
}

TEST(LoadSubdivision, RejectsGarbageHeader) {
  std::istringstream in("not a subdivision\n");
  EXPECT_FALSE(robust::load_subdivision(in).ok());
}

TEST(LoadSubdivision, RejectsInvertedStrip) {
  std::istringstream in("2 100 0 0\n");
  EXPECT_FALSE(robust::load_subdivision(in).ok());
}

TEST(LoadSubdivision, RejectsTruncatedEdgeList) {
  std::istringstream in("2 0 100 1\n0 0 0\n");
  EXPECT_FALSE(robust::load_subdivision(in).ok());
}

TEST(LoadSubdivision, RejectsSemanticallyBrokenInput) {
  // Syntactically fine, but the single separator covers nothing.
  std::istringstream in("2 0 100 0\n");
  const auto sub = robust::load_subdivision(in);
  ASSERT_FALSE(sub.ok());
}

}  // namespace
