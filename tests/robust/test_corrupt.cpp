#include "robust/corrupt.hpp"

#include <gtest/gtest.h>

#include <random>

#include "catalog/tree.hpp"
#include "core/structure.hpp"
#include "fc/build.hpp"
#include "geom/generators.hpp"
#include "pointloc/separator_tree.hpp"
#include "robust/validate.hpp"

namespace {

using robust::CorruptionKind;

cat::Tree good_tree(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return cat::make_balanced_binary(4, 300, cat::CatalogShape::kRandom, rng);
}

// Large enough that hop blocks carry >= 2 skeleton trees (m >= 2), which
// the skeleton-monotonicity corruption needs a pair of to disorder.
cat::Tree big_tree(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return cat::make_balanced_binary(6, 20000, cat::CatalogShape::kRandom, rng);
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

TEST(Corrupt, UnsortedCatalogIsCaughtByTreeValidator) {
  for (const auto seed : kSeeds) {
    auto t = good_tree(seed);
    ASSERT_TRUE(robust::validate_tree(t).ok());
    ASSERT_TRUE(robust::corrupt(t, CorruptionKind::kUnsortedCatalog, seed)
                    .ok());
    const auto s = robust::validate_tree(t);
    EXPECT_FALSE(s.ok()) << "seed " << seed;
    EXPECT_EQ(s.code(), coop::StatusCode::kCorrupted);
  }
}

TEST(Corrupt, EveryFcCorruptionIsCaughtByFcValidator) {
  constexpr CorruptionKind kinds[] = {
      CorruptionKind::kMissingTerminal,
      CorruptionKind::kCrossingBridges,
      CorruptionKind::kBridgeOutOfRange,
      CorruptionKind::kWrongProper,
  };
  for (const auto kind : kinds) {
    for (const auto seed : kSeeds) {
      const auto t = good_tree(seed);
      auto s = fc::Structure::build(t);
      ASSERT_TRUE(robust::validate_fc(s).ok());
      const auto applied = robust::corrupt(s, kind, seed);
      ASSERT_TRUE(applied.ok())
          << robust::to_string(kind) << ": " << applied.to_string();
      const auto v = robust::validate_fc(s);
      EXPECT_FALSE(v.ok())
          << robust::to_string(kind) << " seed " << seed << " undetected";
      EXPECT_EQ(v.code(), coop::StatusCode::kCorrupted);
    }
  }
}

TEST(Corrupt, EveryCoopCorruptionIsCaughtByCoopValidator) {
  constexpr CorruptionKind kinds[] = {
      CorruptionKind::kSkeletonNonMonotone,
      CorruptionKind::kSkeletonOutOfRange,
      CorruptionKind::kBlockMapDangling,
  };
  for (const auto kind : kinds) {
    for (const auto seed : kSeeds) {
      const auto t = big_tree(seed);
      const auto s = fc::Structure::build(t);
      auto cs = coop::CoopStructure::build(s);
      ASSERT_TRUE(robust::validate(cs).ok());
      const auto applied = robust::corrupt(cs, kind, seed);
      ASSERT_TRUE(applied.ok())
          << robust::to_string(kind) << ": " << applied.to_string();
      const auto v = robust::validate(cs);
      EXPECT_FALSE(v.ok())
          << robust::to_string(kind) << " seed " << seed << " undetected";
      EXPECT_EQ(v.code(), coop::StatusCode::kCorrupted);
    }
  }
}

TEST(Corrupt, GapBreakpointDisorderIsCaughtBySeparatorValidator) {
  for (const auto seed : kSeeds) {
    std::mt19937_64 rng(seed);
    const auto sub = geom::make_random_monotone(8, 4, rng);
    pointloc::SeparatorTree st(sub);
    st.precompute_gap_branches();
    ASSERT_TRUE(robust::validate(st).ok());
    const auto applied =
        robust::corrupt(st, CorruptionKind::kGapBreakpointDisorder, seed);
    ASSERT_TRUE(applied.ok()) << applied.to_string();
    const auto v = robust::validate(st);
    EXPECT_FALSE(v.ok()) << "seed " << seed;
    EXPECT_EQ(v.code(), coop::StatusCode::kCorrupted);
  }
}

TEST(Corrupt, GapBreakpointDisorderNeedsPrecompute) {
  std::mt19937_64 rng(1);
  const auto sub = geom::make_random_monotone(4, 2, rng);
  pointloc::SeparatorTree st(sub);
  const auto applied =
      robust::corrupt(st, CorruptionKind::kGapBreakpointDisorder, 1);
  EXPECT_EQ(applied.code(), coop::StatusCode::kFailedPrecondition);
}

// The paper-level guarantee of the harness: for EVERY kind there is a
// structure it applies to, and the top-level separator-tree validator
// (which subsumes tree, fc and coop checks) catches each kind injected
// through the separator tree.
TEST(Corrupt, EveryKindIsCaughtThroughTheSeparatorTree) {
  // Sized so hop blocks carry >= 2 skeleton trees (m >= 2); see above.
  std::mt19937_64 sub_rng(42);
  const auto sub = geom::make_random_monotone(48, 128, sub_rng);
  for (const auto kind : robust::kAllCorruptionKinds) {
    pointloc::SeparatorTree st(sub);
    st.precompute_gap_branches();
    ASSERT_TRUE(robust::validate(st).ok()) << robust::to_string(kind);
    const auto applied = robust::corrupt(st, kind, 9);
    ASSERT_TRUE(applied.ok())
        << robust::to_string(kind) << ": " << applied.to_string();
    EXPECT_FALSE(robust::validate(st).ok())
        << robust::to_string(kind) << " undetected";
  }
}

TEST(Corrupt, WrongKindOnWrongTargetIsRefusedNotApplied) {
  auto t = good_tree(1);
  EXPECT_EQ(robust::corrupt(t, CorruptionKind::kCrossingBridges, 1).code(),
            coop::StatusCode::kFailedPrecondition);
  auto s = fc::Structure::build(t);
  EXPECT_EQ(robust::corrupt(s, CorruptionKind::kUnsortedCatalog, 1).code(),
            coop::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(robust::validate_tree(t).ok());
  EXPECT_TRUE(robust::validate_fc(s).ok());
}

}  // namespace
