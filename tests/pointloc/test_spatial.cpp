#include "pointloc/spatial.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using pointloc::SpatialTree;

struct Case {
  std::size_t surfaces;
  std::size_t regions;
  std::size_t bands;
  std::size_t p;
  std::uint64_t seed;
};

class SpatialParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialParam,
    ::testing::Values(Case{1, 2, 2, 4, 1}, Case{2, 4, 3, 2, 2},
                      Case{5, 8, 4, 16, 3}, Case{16, 16, 6, 64, 4},
                      Case{31, 32, 8, 1024, 5}, Case{64, 20, 10, 4096, 6}));

TEST_P(SpatialParam, SequentialLocateMatchesBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto complex =
      geom::make_terrain_complex(c.surfaces, c.regions, c.bands, rng);
  const SpatialTree st(complex);
  for (int t = 0; t < 100; ++t) {
    const auto q = geom::random_query_point3(complex, rng);
    ASSERT_EQ(st.locate(q), complex.locate_brute(q))
        << "q=(" << q.x << "," << q.y << "," << q.z << ")";
  }
}

TEST_P(SpatialParam, CoopLocateMatchesBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 31);
  const auto complex =
      geom::make_terrain_complex(c.surfaces, c.regions, c.bands, rng);
  const SpatialTree st(complex);
  pram::Machine m(c.p);
  for (int t = 0; t < 60; ++t) {
    const auto q = geom::random_query_point3(complex, rng);
    ASSERT_EQ(st.coop_locate(m, q), complex.locate_brute(q));
  }
}

TEST(Spatial, ExtremeZ) {
  std::mt19937_64 rng(7);
  const auto complex = geom::make_terrain_complex(8, 8, 4, rng);
  const SpatialTree st(complex);
  pram::Machine m(64);
  const auto q2 = geom::random_query_point(complex.footprint, rng);
  EXPECT_EQ(st.coop_locate(m, geom::Point3{q2.x, q2.y, 1}), 0u);
  EXPECT_EQ(st.coop_locate(m, geom::Point3{q2.x, q2.y, 99'999'999}),
            complex.num_surfaces);
}

TEST(Spatial, CoopStepsImproveWithProcessors) {
  std::mt19937_64 rng(8);
  const auto complex = geom::make_terrain_complex(128, 64, 16, rng);
  const SpatialTree st(complex);
  const auto q = geom::random_query_point3(complex, rng);
  std::uint64_t steps_small = 0, steps_big = 0;
  {
    pram::Machine m(4);
    (void)st.coop_locate(m, q);
    steps_small = m.stats().steps;
  }
  {
    pram::Machine m(1 << 14);
    (void)st.coop_locate(m, q);
    steps_big = m.stats().steps;
  }
  EXPECT_LT(steps_big, steps_small);
}

TEST(Spatial, OuterHopsReported) {
  std::mt19937_64 rng(9);
  const auto complex = geom::make_terrain_complex(64, 16, 8, rng);
  const SpatialTree st(complex);
  pram::Machine m(256);
  std::uint64_t hops = 0;
  (void)st.coop_locate(m, geom::random_query_point3(complex, rng), &hops);
  EXPECT_GE(hops, 1u);
  // 64 surfaces, h = log2(256)/2 = 4 levels per hop: <= ~ceil(7/4)+1 hops.
  EXPECT_LE(hops, 4u);
}

}  // namespace
