#include <gtest/gtest.h>

#include <random>

#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "pointloc/slab_index.hpp"

namespace {

using geom::Point;
using pointloc::SeparatorTree;
using pointloc::SlabIndex;

class SlabParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlabParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(4, 4),
                      std::make_pair<std::size_t, std::size_t>(32, 10),
                      std::make_pair<std::size_t, std::size_t>(128, 24)));

TEST_P(SlabParam, SlabIndexMatchesBruteForce) {
  const auto [regions, bands] = GetParam();
  std::mt19937_64 rng(regions + bands);
  const auto sub = geom::make_random_monotone(regions, bands, rng);
  const SlabIndex idx(sub);
  for (int t = 0; t < 150; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(idx.locate(q), sub.locate_brute(q))
        << "q=(" << q.x << "," << q.y << ")";
  }
}

TEST(SlabIndex, SpaceBlowupOnSharedChains) {
  // An edge spanning many bands is replicated in every slab it crosses —
  // the space cost the separator tree avoids by storing each edge once.
  std::mt19937_64 rng(9);
  const auto sub = geom::make_random_monotone(64, 40, rng);
  const SlabIndex idx(sub);
  const SeparatorTree st(sub);
  std::size_t stored_once = 0;
  for (std::size_t v = 0; v < st.tree().num_nodes(); ++v) {
    stored_once += st.tree().catalog(cat::NodeId(v)).real_size();
  }
  EXPECT_EQ(stored_once, sub.edges.size());
  EXPECT_GE(idx.total_crossings(), sub.edges.size());
}

TEST_P(SlabParam, GapBranchLocateMatchesRunningMaxLocate) {
  const auto [regions, bands] = GetParam();
  std::mt19937_64 rng(regions * 31 + bands);
  const auto sub = geom::make_random_monotone(regions, bands, rng);
  SeparatorTree st(sub);
  st.precompute_gap_branches();
  ASSERT_TRUE(st.has_gap_branches());
  for (int t = 0; t < 150; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    const std::size_t expect = sub.locate_brute(q);
    ASSERT_EQ(st.locate_with_gaps(q), expect);
    ASSERT_EQ(st.locate(q), expect);
  }
}

TEST(GapBranches, AgreeOnSharedEdgeHeavyInput) {
  // Few bands => many shared edges => most nodes inactive: the stored gap
  // directions carry the whole search.
  std::mt19937_64 rng(10);
  const auto sub = geom::make_random_monotone(200, 3, rng);
  SeparatorTree st(sub);
  st.precompute_gap_branches();
  for (int t = 0; t < 300; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(st.locate_with_gaps(q), sub.locate_brute(q));
  }
}

TEST(BatchPointLocation, MatchesSingleQueries) {
  std::mt19937_64 rng(11);
  const auto sub = geom::make_random_monotone(128, 16, rng);
  const SeparatorTree st(sub);
  std::vector<Point> queries;
  for (int i = 0; i < 50; ++i) {
    queries.push_back(geom::random_query_point(sub, rng));
  }
  pram::Machine m(512);
  const auto got = pointloc::coop_locate_batch(st, m, queries);
  ASSERT_EQ(got.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i], sub.locate_brute(queries[i]));
  }
}

TEST(BatchPointLocation, ThroughputBeatsSerial) {
  std::mt19937_64 rng(12);
  const auto sub = geom::make_random_monotone(512, 32, rng);
  const SeparatorTree st(sub);
  std::vector<Point> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(geom::random_query_point(sub, rng));
  }
  std::uint64_t serial = 0, batched = 0;
  {
    pram::Machine m(256);
    for (const auto& q : queries) {
      (void)pointloc::coop_locate(st, m, q);
    }
    serial = m.stats().steps;
  }
  {
    pram::Machine m(256);
    (void)pointloc::coop_locate_batch(st, m, queries);
    batched = m.stats().steps;
  }
  EXPECT_LT(batched * 4, serial);
}

}  // namespace
