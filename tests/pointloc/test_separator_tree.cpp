#include "pointloc/separator_tree.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"

namespace {

using geom::Point;
using pointloc::SeparatorTree;

struct Case {
  std::size_t regions;
  std::size_t bands;
  std::uint64_t seed;
};

class SepTreeParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(Sweep, SepTreeParam,
                         ::testing::Values(Case{1, 1, 1}, Case{2, 3, 2},
                                           Case{3, 5, 3}, Case{8, 8, 4},
                                           Case{17, 12, 5}, Case{64, 20, 6},
                                           Case{100, 40, 7},
                                           Case{256, 25, 8}));

TEST_P(SepTreeParam, SequentialLocateMatchesBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto sub = geom::make_random_monotone(c.regions, c.bands, rng);
  ASSERT_EQ(sub.validate(), "");
  const SeparatorTree st(sub);
  for (int t = 0; t < 200; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(st.locate(q), sub.locate_brute(q))
        << "q=(" << q.x << "," << q.y << ")";
  }
}

TEST_P(SepTreeParam, NoBridgeBaselineAgrees) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 50);
  const auto sub = geom::make_random_monotone(c.regions, c.bands, rng);
  const SeparatorTree st(sub);
  for (int t = 0; t < 100; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(st.locate_no_bridges(q), sub.locate_brute(q));
  }
}

TEST_P(SepTreeParam, SlabsLocate) {
  const auto c = GetParam();
  const auto sub = geom::make_slabs(c.regions, c.bands);
  const SeparatorTree st(sub);
  std::mt19937_64 rng(c.seed + 99);
  for (int t = 0; t < 100; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(st.locate(q), sub.locate_brute(q));
  }
}

TEST(SeparatorTree, ProperEdgeStorageIsOncePerEdge) {
  std::mt19937_64 rng(11);
  const auto sub = geom::make_random_monotone(50, 20, rng);
  const SeparatorTree st(sub);
  std::size_t stored = 0;
  for (std::size_t v = 0; v < st.tree().num_nodes(); ++v) {
    stored += st.tree().catalog(cat::NodeId(v)).real_size();
  }
  EXPECT_EQ(stored, sub.edges.size());
}

TEST(SeparatorTree, ProperNodeIsLcaOfRange) {
  std::mt19937_64 rng(12);
  const auto sub = geom::make_random_monotone(32, 10, rng);
  const SeparatorTree st(sub);
  for (std::size_t v = 0; v < st.tree().num_nodes(); ++v) {
    const auto& c = st.tree().catalog(cat::NodeId(v));
    const std::int32_t m = st.separator_of(cat::NodeId(v));
    for (std::size_t i = 0; i < c.real_size(); ++i) {
      const auto& e = sub.edges[c.payload(i)];
      // The separator of the storing node lies in the edge's range...
      EXPECT_LE(e.min_sep, m);
      EXPECT_GE(e.max_sep, m);
      // ...and is the shallowest such tree node (LCA property): no strict
      // ancestor's separator lies in the range.
      cat::NodeId a = st.tree().parent(cat::NodeId(v));
      while (a != cat::kNullNode) {
        const std::int32_t ma = st.separator_of(a);
        EXPECT_FALSE(e.min_sep <= ma && ma <= e.max_sep)
            << "ancestor separator " << ma << " inside range of edge at "
            << m;
        a = st.tree().parent(a);
      }
    }
  }
}

TEST(SeparatorTree, FcComparisonAdvantageOnQueries) {
  std::mt19937_64 rng(13);
  const auto sub = geom::make_random_monotone(512, 60, rng);
  const SeparatorTree st(sub);
  const Point q = geom::random_query_point(sub, rng);
  fc::SearchStats bridged, plain;
  (void)st.locate(q, &bridged);
  (void)st.locate_no_bridges(q, &plain);
  EXPECT_LT(bridged.comparisons + bridged.bridge_walks, plain.comparisons);
}

TEST(SeparatorTree, CascadingPropertiesHoldOnGeometricCatalogs) {
  // The fan-out/non-crossing/mutual-density invariants must hold on the
  // separator tree's real edge catalogs (heavily shared, very uneven
  // sizes), not just on random synthetic ones.
  std::mt19937_64 rng(15);
  for (const auto& sub :
       {geom::make_random_monotone(96, 12, rng),
        geom::make_jagged(48, 10, rng), geom::make_slabs(64, 6)}) {
    ASSERT_EQ(sub.validate(), "");
    const SeparatorTree st(sub);
    EXPECT_EQ(st.cascade().verify_properties(), "");
  }
}

TEST(SeparatorTree, JaggedSubdivisionLocate) {
  std::mt19937_64 rng(16);
  const auto sub = geom::make_jagged(64, 16, rng);
  const SeparatorTree st(sub);
  pram::Machine m(128);
  for (int t = 0; t < 150; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    const std::size_t expect = sub.locate_brute(q);
    ASSERT_EQ(st.locate(q), expect);
    ASSERT_EQ(pointloc::coop_locate(st, m, q), expect);
  }
}

TEST(SeparatorTree, LinearSpace) {
  std::mt19937_64 rng(14);
  const auto sub = geom::make_random_monotone(256, 40, rng);
  const SeparatorTree st(sub);
  // O(n): edges + padded tree nodes, with the cascading/skeleton constant.
  const std::size_t input = sub.edges.size() + st.tree().num_nodes();
  EXPECT_LE(st.total_entries(), 20 * input);
}

}  // namespace
