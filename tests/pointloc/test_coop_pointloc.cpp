#include "pointloc/coop_pointloc.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geom/generators.hpp"

namespace {

using geom::Point;
using pointloc::SeparatorTree;

struct Case {
  std::size_t regions;
  std::size_t bands;
  std::size_t p;
  std::uint64_t seed;
};

class CoopPlParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoopPlParam,
    ::testing::Values(Case{2, 2, 4, 1}, Case{4, 4, 1, 2}, Case{8, 6, 2, 3},
                      Case{16, 10, 16, 4}, Case{33, 12, 64, 5},
                      Case{64, 16, 256, 6}, Case{128, 20, 1024, 7},
                      Case{256, 24, 65536, 8}));

TEST_P(CoopPlParam, MatchesBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto sub = geom::make_random_monotone(c.regions, c.bands, rng);
  ASSERT_EQ(sub.validate(), "");
  const SeparatorTree st(sub);
  pram::Machine m(c.p);
  for (int t = 0; t < 100; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(pointloc::coop_locate(st, m, q), sub.locate_brute(q))
        << "q=(" << q.x << "," << q.y << ") p=" << c.p;
  }
}

TEST_P(CoopPlParam, AgreesWithSequentialLocate) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 77);
  const auto sub = geom::make_random_monotone(c.regions, c.bands, rng);
  const SeparatorTree st(sub);
  pram::Machine m(c.p);
  for (int t = 0; t < 60; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(pointloc::coop_locate(st, m, q), st.locate(q));
  }
}

TEST(CoopPointLoc, StepsDecreaseWithMoreProcessors) {
  std::mt19937_64 rng(9);
  const auto sub = geom::make_random_monotone(2048, 200, rng);
  const SeparatorTree st(sub);
  const Point q = geom::random_query_point(sub, rng);
  std::uint64_t steps_small = 0, steps_big = 0;
  {
    pram::Machine m(4);
    (void)pointloc::coop_locate(st, m, q);
    steps_small = m.stats().steps;
  }
  {
    pram::Machine m(1 << 14);
    (void)pointloc::coop_locate(st, m, q);
    steps_big = m.stats().steps;
  }
  EXPECT_LT(steps_big, steps_small);
}

TEST(CoopPointLoc, HopCountMatchesSubstructureGeometry) {
  std::mt19937_64 rng(10);
  const auto sub = geom::make_random_monotone(512, 64, rng);
  const SeparatorTree st(sub);
  const Point q = geom::random_query_point(sub, rng);
  for (std::size_t p : {2, 32, 4096}) {
    pram::Machine m(p);
    std::uint64_t hops = 0;
    (void)pointloc::coop_locate(st, m, q, &hops);
    const auto& cs = st.coop_structure();
    const auto& subst = cs.for_processors(p);
    EXPECT_EQ(hops, (subst.trunc_level + subst.h - 1) / subst.h);
  }
}

TEST(CoopPointLoc, SharedEdgeHeavySubdivision) {
  // A subdivision where most edges are shared across many separators
  // stresses the inactive-node rule.
  std::mt19937_64 rng(11);
  const auto sub = geom::make_random_monotone(200, 4, rng);
  const SeparatorTree st(sub);
  pram::Machine m(128);
  for (int t = 0; t < 200; ++t) {
    const Point q = geom::random_query_point(sub, rng);
    ASSERT_EQ(pointloc::coop_locate(st, m, q), sub.locate_brute(q));
  }
}

TEST(CoopPointLoc, ExtremeQueriesLandInOuterRegions) {
  std::mt19937_64 rng(12);
  const auto sub = geom::make_random_monotone(32, 8, rng);
  const SeparatorTree st(sub);
  pram::Machine m(64);
  const geom::Coord mid_y = (sub.ymin + sub.ymax) / 2 + 1;
  EXPECT_EQ(pointloc::coop_locate(st, m, Point{-100'000'000, mid_y}), 0u);
  EXPECT_EQ(pointloc::coop_locate(st, m, Point{100'000'000, mid_y}),
            sub.num_regions - 1);
}

}  // namespace
