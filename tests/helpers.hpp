#pragma once

#include <random>
#include <vector>

#include "catalog/tree.hpp"

namespace test_helpers {

/// Brute-force find(y, v): index of the smallest original-catalog entry
/// >= y (the oracle every search result is checked against).
inline std::size_t brute_find(const cat::Tree& t, cat::NodeId v, cat::Key y) {
  return t.catalog(v).find(y);
}

/// A uniformly random root-to-leaf path.
inline std::vector<cat::NodeId> random_root_leaf_path(const cat::Tree& t,
                                                      std::mt19937_64& rng) {
  std::vector<cat::NodeId> path{t.root()};
  while (!t.is_leaf(path.back())) {
    const auto kids = t.children(path.back());
    path.push_back(kids[rng() % kids.size()]);
  }
  return path;
}

/// A random downward chain starting anywhere (for segment searches).
inline std::vector<cat::NodeId> random_chain(const cat::Tree& t,
                                             std::mt19937_64& rng) {
  cat::NodeId start = cat::NodeId(rng() % t.num_nodes());
  std::vector<cat::NodeId> path{start};
  while (!t.is_leaf(path.back()) && rng() % 8 != 0) {
    const auto kids = t.children(path.back());
    path.push_back(kids[rng() % kids.size()]);
  }
  return path;
}

/// Query keys worth probing: exact keys, off-by-one neighbours, extremes.
inline cat::Key random_query(const cat::Tree& t, std::mt19937_64& rng,
                             cat::Key key_range = 1'000'000'000) {
  switch (rng() % 4) {
    case 0: {
      // An existing key (or its neighbourhood) from a random catalog.
      const cat::NodeId v = cat::NodeId(rng() % t.num_nodes());
      const auto& c = t.catalog(v);
      if (c.real_size() > 0) {
        const cat::Key k = c.key(rng() % c.real_size());
        return k + cat::Key(rng() % 3) - 1;
      }
      [[fallthrough]];
    }
    case 1:
      return cat::Key(rng() % key_range);
    case 2:
      return 0;
    default:
      return key_range + cat::Key(rng() % 100);
  }
}

}  // namespace test_helpers
