#include "fc/parallel_build.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "pram/primitives.hpp"

namespace {

using cat::CatalogShape;

void expect_identical(const fc::Structure& a, const fc::Structure& b) {
  ASSERT_EQ(a.sample_k(), b.sample_k());
  const auto& t = a.tree();
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const auto& aa = a.aug(cat::NodeId(v));
    const auto& bb = b.aug(cat::NodeId(v));
    ASSERT_EQ(aa.keys, bb.keys) << "node " << v;
    ASSERT_EQ(aa.proper, bb.proper) << "node " << v;
    ASSERT_EQ(aa.bridge, bb.bridge) << "node " << v;
  }
}

struct Case {
  std::uint32_t height;
  std::size_t entries;
  CatalogShape shape;
  std::uint64_t seed;
};

class ParBuildParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParBuildParam,
    ::testing::Values(Case{0, 5, CatalogShape::kUniform, 1},
                      Case{2, 0, CatalogShape::kUniform, 2},
                      Case{4, 300, CatalogShape::kRandom, 3},
                      Case{6, 2000, CatalogShape::kSkewed, 4},
                      Case{6, 2000, CatalogShape::kRootHeavy, 5},
                      Case{8, 10000, CatalogShape::kLeafHeavy, 6}));

TEST_P(ParBuildParam, MatchesSequentialBuild) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto seq = fc::Structure::build(t);
  pram::Machine m(64);
  const auto par = fc::build_parallel(t, m);
  expect_identical(seq, par);
}

TEST(ParBuild, GeneralTreeMatches) {
  std::mt19937_64 rng(77);
  const auto t = cat::make_random_tree(60, 3, 400, CatalogShape::kRandom, rng);
  const auto seq = fc::Structure::build(t);
  pram::Machine m(16);
  const auto par = fc::build_parallel(t, m);
  expect_identical(seq, par);
}

TEST(ParBuild, DepthScalesPolylog) {
  // With p ~ n processors the measured depth should grow like log^2 n
  // (see DESIGN.md deviation 1), far below n.
  std::mt19937_64 rng(88);
  std::uint64_t prev_depth = 0;
  for (std::uint32_t h : {6u, 8u, 10u}) {
    const std::size_t n = std::size_t(1) << (h + 4);
    const auto t = cat::make_balanced_binary(h, n, CatalogShape::kRandom, rng);
    pram::Machine m(n);
    (void)fc::build_parallel(t, m);
    const double logn = std::log2(double(n));
    EXPECT_LE(m.stats().steps, 30 * logn * logn) << "h=" << h;
    EXPECT_GT(m.stats().steps, prev_depth);  // monotone in n
    prev_depth = m.stats().steps;
  }
}

TEST(ParBuild, WorkNearLinearTimesLog) {
  std::mt19937_64 rng(99);
  const std::uint32_t h = 9;
  const std::size_t n = 1 << 14;
  const auto t = cat::make_balanced_binary(h, n, CatalogShape::kRandom, rng);
  pram::Machine m(256);
  (void)fc::build_parallel(t, m);
  const double logn = std::log2(double(n));
  const double input = double(n + t.num_nodes());
  EXPECT_LE(double(m.stats().work), 40.0 * input * logn);
}

}  // namespace
