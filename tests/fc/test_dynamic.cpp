#include "fc/dynamic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using cat::Key;
using cat::NodeId;
using fc::DynamicStructure;

/// Reference model: one ordered map per node.
struct Model {
  std::vector<std::map<Key, std::uint64_t>> cats;

  explicit Model(const cat::Tree& t) : cats(t.num_nodes()) {
    for (std::size_t v = 0; v < t.num_nodes(); ++v) {
      const auto& c = t.catalog(NodeId(v));
      for (std::size_t i = 0; i < c.real_size(); ++i) {
        cats[v][c.key(i)] = c.payload(i);
      }
    }
  }

  DynamicStructure::Entry find(NodeId v, Key y) const {
    const auto it = cats[v].lower_bound(y);
    if (it == cats[v].end()) {
      return {};
    }
    return {it->first, it->second};
  }
};

TEST(Dynamic, FindMatchesModelUnderRandomUpdates) {
  std::mt19937_64 rng(1);
  auto tree = cat::make_balanced_binary(5, 300, CatalogShape::kRandom, rng);
  Model model(tree);
  DynamicStructure dyn(std::move(tree));
  const std::size_t nodes = dyn.tree().num_nodes();

  for (int op = 0; op < 3000; ++op) {
    const NodeId v = NodeId(rng() % nodes);
    const Key k = Key(rng() % 5000) * 3;
    switch (rng() % 3) {
      case 0: {
        const bool did = dyn.insert(v, k, std::uint64_t(op));
        const bool expect = model.cats[v].find(k) == model.cats[v].end();
        ASSERT_EQ(did, expect) << "op " << op;
        if (did && model.cats[v].find(k) == model.cats[v].end()) {
          model.cats[v][k] = std::uint64_t(op);
        }
        break;
      }
      case 1: {
        const bool did = dyn.erase(v, k);
        ASSERT_EQ(did, model.cats[v].erase(k) > 0) << "op " << op;
        break;
      }
      default: {
        const Key y = Key(rng() % 16000);
        const auto got = dyn.find(v, y);
        const auto expect = model.find(v, y);
        ASSERT_EQ(got.key, expect.key) << "op " << op << " node " << v;
        break;
      }
    }
  }
  EXPECT_GT(dyn.rebuilds(), 0u) << "threshold should have triggered";
}

TEST(Dynamic, ReinsertAfterDeleteResurrectsKey) {
  std::mt19937_64 rng(2);
  auto tree = cat::make_balanced_binary(2, 20, CatalogShape::kUniform, rng);
  const NodeId v = tree.root();
  const Key k = tree.catalog(v).key(0);
  DynamicStructure dyn(std::move(tree));
  EXPECT_TRUE(dyn.erase(v, k));
  EXPECT_NE(dyn.find(v, k).key, k);
  EXPECT_TRUE(dyn.insert(v, k));
  EXPECT_EQ(dyn.find(v, k).key, k);
  EXPECT_FALSE(dyn.insert(v, k)) << "duplicate insert must be rejected";
}

TEST(Dynamic, PathSearchMatchesPerNodeFind) {
  std::mt19937_64 rng(3);
  auto tree = cat::make_balanced_binary(6, 2000, CatalogShape::kSkewed, rng);
  DynamicStructure dyn(std::move(tree));
  const std::size_t nodes = dyn.tree().num_nodes();

  for (int round = 0; round < 20; ++round) {
    // A burst of updates...
    for (int u = 0; u < 50; ++u) {
      const NodeId v = NodeId(rng() % nodes);
      const Key k = Key(rng() % 1'000'000'000);
      if (rng() % 2 == 0) {
        (void)dyn.insert(v, k, std::uint64_t(u));
      } else {
        (void)dyn.erase(v, k);
      }
    }
    // ...then path queries checked against the per-node finds (which the
    // previous test pinned to the model).
    for (int q = 0; q < 20; ++q) {
      const auto path = test_helpers::random_root_leaf_path(dyn.tree(), rng);
      const Key y = Key(rng() % 1'000'000'000);
      const auto res = dyn.search(path, y);
      ASSERT_EQ(res.size(), path.size());
      for (std::size_t i = 0; i < path.size(); ++i) {
        const auto expect = dyn.find(path[i], y);
        ASSERT_EQ(res[i].key, expect.key) << "round " << round;
        ASSERT_EQ(res[i].payload, expect.payload);
      }
    }
  }
}

TEST(Dynamic, ExplicitRebuildClearsPending) {
  std::mt19937_64 rng(4);
  auto tree = cat::make_balanced_binary(3, 50, CatalogShape::kUniform, rng);
  DynamicStructure dyn(std::move(tree), /*rebuild_fraction=*/100.0);
  (void)dyn.insert(NodeId(0), 123456789);
  (void)dyn.insert(NodeId(1), 23456789);
  EXPECT_EQ(dyn.pending_updates(), 2u);
  dyn.rebuild();
  EXPECT_EQ(dyn.pending_updates(), 0u);
  // The rebuilt snapshot passes the cascading property check.
  EXPECT_EQ(dyn.snapshot().verify_properties(), "");
  EXPECT_EQ(dyn.find(NodeId(0), 123456789).key, 123456789);
}

TEST(Dynamic, SizeTracksLiveEntries) {
  std::mt19937_64 rng(5);
  auto tree = cat::make_balanced_binary(3, 100, CatalogShape::kRandom, rng);
  const std::size_t initial = tree.total_catalog_size();
  DynamicStructure dyn(std::move(tree));
  EXPECT_EQ(dyn.size(), initial);
  const NodeId v = NodeId(3);
  ASSERT_TRUE(dyn.insert(v, 999999999));
  EXPECT_EQ(dyn.size(), initial + 1);
  ASSERT_TRUE(dyn.erase(v, 999999999));
  EXPECT_EQ(dyn.size(), initial);
}

TEST(Dynamic, SearchCostStaysLogarithmicAfterRebuilds) {
  std::mt19937_64 rng(6);
  auto tree = cat::make_balanced_binary(8, 20000, CatalogShape::kRandom, rng);
  DynamicStructure dyn(std::move(tree), 0.1);
  const std::size_t nodes = dyn.tree().num_nodes();
  for (int u = 0; u < 5000; ++u) {
    (void)dyn.insert(NodeId(rng() % nodes), Key(rng() % 1'000'000'000));
  }
  EXPECT_GT(dyn.rebuilds(), 1u);
  const auto path = test_helpers::random_root_leaf_path(dyn.tree(), rng);
  fc::SearchStats st;
  (void)dyn.search(path, 500'000'000, &st);
  const double logn = std::log2(double(dyn.size()));
  EXPECT_LE(st.comparisons, 2 * logn + 10);
  EXPECT_LE(st.bridge_walks, dyn.snapshot().fanout_bound() * path.size());
}

}  // namespace
