#include "fc/search.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using fc::Structure;

TEST(FcSearch, ExplicitMatchesBruteForce) {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(7, 3000, CatalogShape::kRandom, rng);
  const auto s = Structure::build(t);
  for (int trial = 0; trial < 300; ++trial) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto r = fc::search_explicit(s, path, y);
    ASSERT_EQ(r.proper_index.size(), path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, path[i], y))
          << "trial " << trial << " node " << path[i];
    }
  }
}

TEST(FcSearch, ExplicitComparisonBoundLogNPlusMB) {
  std::mt19937_64 rng(2);
  const auto t =
      cat::make_balanced_binary(10, 100000, CatalogShape::kRandom, rng);
  const auto s = Structure::build(t);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  fc::SearchStats st;
  (void)fc::search_explicit(s, path, 500'000'000, &st);
  // One binary search O(log n) plus <= b walk per node.
  const double logn = std::log2(double(t.total_catalog_size()));
  EXPECT_LE(st.comparisons, 2 * logn + 10);
  EXPECT_LE(st.bridge_walks, s.fanout_bound() * path.size());
}

TEST(FcSearch, BaselineDoesMoreComparisonsOnDeepTrees) {
  std::mt19937_64 rng(3);
  const auto t =
      cat::make_balanced_binary(10, 50000, CatalogShape::kUniform, rng);
  const auto s = Structure::build(t);
  const auto path = test_helpers::random_root_leaf_path(t, rng);
  fc::SearchStats fc_st, base_st;
  const cat::Key y = 123456789;
  const auto a = fc::search_explicit(s, path, y, &fc_st);
  const auto b = fc::search_binary_baseline(t, path, y, &base_st);
  ASSERT_EQ(a.proper_index, b.proper_index);
  EXPECT_LT(fc_st.comparisons + fc_st.bridge_walks, base_st.comparisons);
}

TEST(FcSearch, ImplicitBstSemantics) {
  // Build a binary search tree over node split keys: branch left iff
  // y <= split(v).  The implicit search must follow exactly the BST path.
  std::mt19937_64 rng(4);
  const auto t = cat::make_balanced_binary(6, 1000, CatalogShape::kRandom, rng);
  const auto s = Structure::build(t);
  // Assign splits by inorder position so the BST property holds: node at
  // heap index v covers an inorder interval; use midpoint keys.
  const std::size_t n_nodes = t.num_nodes();
  std::vector<cat::Key> split(n_nodes);
  // Inorder numbering of a complete binary heap.
  std::vector<cat::NodeId> inorder;
  {
    std::vector<std::pair<cat::NodeId, int>> stack{{t.root(), 0}};
    while (!stack.empty()) {
      auto& [v, state] = stack.back();
      if (state == 0) {
        state = 1;
        if (!t.is_leaf(v)) {
          stack.push_back({t.children(v)[0], 0});
          continue;
        }
      }
      if (state == 1) {
        inorder.push_back(v);
        state = 2;
        if (!t.is_leaf(v)) {
          stack.push_back({t.children(v)[1], 0});
          continue;
        }
      }
      stack.pop_back();
    }
  }
  for (std::size_t i = 0; i < inorder.size(); ++i) {
    split[inorder[i]] = cat::Key(i) * 1000;
  }

  for (int trial = 0; trial < 200; ++trial) {
    const cat::Key x = cat::Key(rng() % (n_nodes * 1000));
    const cat::Key y = test_helpers::random_query(t, rng);
    const auto branch = [&](cat::NodeId v, std::size_t) -> std::uint32_t {
      return x <= split[v] ? 0 : 1;
    };
    const auto r = fc::search_implicit(s, y, branch);
    // Check the path is the BST path for x.
    cat::NodeId v = t.root();
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      ASSERT_EQ(r.path[i], v);
      ASSERT_EQ(r.proper_index[i], test_helpers::brute_find(t, v, y));
      if (!t.is_leaf(v)) {
        v = t.children(v)[x <= split[v] ? 0 : 1];
      }
    }
    EXPECT_EQ(r.path.size(), t.height() + 1);
  }
}

TEST(FcSearch, ValidRootPath) {
  std::mt19937_64 rng(5);
  const auto t = cat::make_balanced_binary(3, 10, CatalogShape::kUniform, rng);
  const auto good = test_helpers::random_root_leaf_path(t, rng);
  EXPECT_TRUE(fc::valid_root_path(t, good));
  std::vector<cat::NodeId> bad{t.children(t.root())[0]};
  EXPECT_FALSE(fc::valid_root_path(t, bad));
  std::vector<cat::NodeId> skip{t.root(),
                                t.children(t.children(t.root())[0])[0]};
  EXPECT_FALSE(fc::valid_root_path(t, skip));
}

TEST(FcSearch, SingleNodeTree) {
  std::mt19937_64 rng(6);
  const auto t = cat::make_balanced_binary(0, 20, CatalogShape::kUniform, rng);
  const auto s = Structure::build(t);
  const std::vector<cat::NodeId> path{t.root()};
  const auto r = fc::search_explicit(s, path, 5);
  EXPECT_EQ(r.proper_index[0], test_helpers::brute_find(t, t.root(), 5));
}

}  // namespace
