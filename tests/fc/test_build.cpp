#include "fc/build.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"

namespace {

using cat::CatalogShape;
using fc::Structure;

struct BuildCase {
  std::uint32_t height;
  std::size_t entries;
  CatalogShape shape;
  std::uint64_t seed;
};

class FcBuildParam : public ::testing::TestWithParam<BuildCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, FcBuildParam,
    ::testing::Values(BuildCase{0, 10, CatalogShape::kUniform, 1},
                      BuildCase{1, 0, CatalogShape::kUniform, 2},
                      BuildCase{3, 50, CatalogShape::kRandom, 3},
                      BuildCase{5, 500, CatalogShape::kUniform, 4},
                      BuildCase{5, 500, CatalogShape::kRootHeavy, 5},
                      BuildCase{5, 500, CatalogShape::kLeafHeavy, 6},
                      BuildCase{5, 500, CatalogShape::kSkewed, 7},
                      BuildCase{8, 5000, CatalogShape::kSkewed, 8},
                      BuildCase{10, 20000, CatalogShape::kRandom, 9}));

TEST_P(FcBuildParam, PropertiesHold) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = Structure::build(t);
  EXPECT_EQ(s.verify_properties(), "");
}

TEST_P(FcBuildParam, AugFindMapsToProperFind) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 100);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = Structure::build(t);
  for (int trial = 0; trial < 200; ++trial) {
    const cat::NodeId v = cat::NodeId(rng() % t.num_nodes());
    const cat::Key y = test_helpers::random_query(t, rng);
    const std::size_t aug = s.aug_find(v, y);
    EXPECT_EQ(s.to_proper(v, aug), test_helpers::brute_find(t, v, y));
  }
}

TEST_P(FcBuildParam, LinearSpace) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed + 200);
  const auto t = cat::make_balanced_binary(c.height, c.entries, c.shape, rng);
  const auto s = Structure::build(t);
  // With k = 4 on a binary tree, total augmented size <= 2 * (catalogs +
  // sentinels); allow slack for small trees.
  const std::size_t input = t.total_catalog_size() + t.num_nodes();
  EXPECT_LE(s.total_aug_entries(), 3 * input + 8);
}

TEST(FcBuild, AutoSampleFactorExceedsDegree) {
  std::mt19937_64 rng(42);
  const auto t = cat::make_random_tree(100, 5, 500, CatalogShape::kRandom, rng);
  EXPECT_GT(fc::auto_sample_k(t), t.max_degree());
  const auto s = Structure::build(t);
  EXPECT_EQ(s.verify_properties(), "");
}

TEST(FcBuild, GeneralTreesWork) {
  std::mt19937_64 rng(43);
  for (std::size_t deg : {1u, 3u, 6u}) {
    const auto t =
        cat::make_random_tree(80, deg, 400, CatalogShape::kRandom, rng);
    const auto s = Structure::build(t);
    EXPECT_EQ(s.verify_properties(), "") << "degree " << deg;
    for (int trial = 0; trial < 100; ++trial) {
      const cat::NodeId v = cat::NodeId(rng() % t.num_nodes());
      const cat::Key y = test_helpers::random_query(t, rng);
      EXPECT_EQ(s.to_proper(v, s.aug_find(v, y)),
                test_helpers::brute_find(t, v, y));
    }
  }
}

TEST(FcBuild, BridgeWalkNeverExceedsB) {
  std::mt19937_64 rng(44);
  const auto t =
      cat::make_balanced_binary(6, 2000, CatalogShape::kSkewed, rng);
  const auto s = Structure::build(t);
  for (int trial = 0; trial < 500; ++trial) {
    const auto path = test_helpers::random_root_leaf_path(t, rng);
    const cat::Key y = test_helpers::random_query(t, rng);
    std::size_t i = s.aug_find(path[0], y);
    for (std::size_t step = 1; step < path.size(); ++step) {
      fc::SearchStats st;
      const auto slot =
          static_cast<std::uint32_t>(t.child_slot(path[step]));
      i = s.follow_bridge(path[step - 1], i, slot, y, &st);
      EXPECT_LE(st.bridge_walks, s.fanout_bound());
    }
  }
}

TEST(FcBuild, SampleIndexGeometry) {
  fc::SampleIndex si{10, 4};
  EXPECT_EQ(si.count(), 3u);  // positions 1, 5, 9
  EXPECT_EQ(si.position(0), 1u);
  EXPECT_EQ(si.position(1), 5u);
  EXPECT_EQ(si.position(2), 9u);
  fc::SampleIndex exact{8, 4};
  EXPECT_EQ(exact.count(), 2u);  // positions 3, 7
  EXPECT_EQ(exact.position(0), 3u);
  EXPECT_EQ(exact.position(1), 7u);
  fc::SampleIndex one{1, 4};
  EXPECT_EQ(one.count(), 1u);
  EXPECT_EQ(one.position(0), 0u);
}

}  // namespace
