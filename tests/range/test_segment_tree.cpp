#include "range/segment_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace {

using range::SegmentIntersectionTree;
using range::VSegment;

std::vector<VSegment> random_segments(std::size_t n, std::mt19937_64& rng) {
  std::vector<VSegment> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Coord x = geom::Coord(rng() % 100000) * 2;
    const geom::Coord ylo = geom::Coord(rng() % 50000) * 2;
    const geom::Coord len = 2 + geom::Coord(rng() % 30000) * 2;
    out.push_back(VSegment{x, ylo, ylo + len});
  }
  return out;
}

std::vector<std::uint64_t> ids_of(const SegmentIntersectionTree& t,
                                  const std::vector<range::AnswerRange>& rs) {
  std::vector<std::uint64_t> out;
  for (const auto& r : rs) {
    const auto& c = t.tree().catalog(r.node);
    for (std::uint32_t i = r.lo; i < r.hi; ++i) {
      out.push_back(c.payload(i));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class SegTreeParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegTreeParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 4),
                      std::make_pair<std::size_t, std::size_t>(5, 2),
                      std::make_pair<std::size_t, std::size_t>(50, 8),
                      std::make_pair<std::size_t, std::size_t>(200, 64),
                      std::make_pair<std::size_t, std::size_t>(1000, 1024)));

TEST_P(SegTreeParam, SequentialMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 17 + p);
  const SegmentIntersectionTree t(random_segments(n, rng));
  for (int trial = 0; trial < 100; ++trial) {
    const geom::Coord y = 1 + geom::Coord(rng() % 120000) * 2 / 2 * 2 + 1;
    const geom::Coord x1 = geom::Coord(rng() % 100000);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 100000);
    auto expect = t.query_brute(y, x1, x2);
    std::sort(expect.begin(), expect.end());
    const auto got = ids_of(t, t.query_ranges(y, x1, x2));
    ASSERT_EQ(got, expect) << "y=" << y << " [" << x1 << "," << x2 << "]";
  }
}

TEST_P(SegTreeParam, CooperativeMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 31 + p);
  const SegmentIntersectionTree t(random_segments(n, rng));
  pram::Machine m(p);
  for (int trial = 0; trial < 60; ++trial) {
    const geom::Coord y = 2 * geom::Coord(rng() % 60000) + 1;
    const geom::Coord x1 = geom::Coord(rng() % 100000);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 100000);
    auto expect = t.query_brute(y, x1, x2);
    std::sort(expect.begin(), expect.end());
    const auto got = ids_of(t, t.coop_query_ranges(m, y, x1, x2));
    ASSERT_EQ(got, expect);
  }
}

TEST(SegmentTree, PathCatalogsOnlyContainSpanningSegments) {
  std::mt19937_64 rng(7);
  const auto segs = random_segments(300, rng);
  const SegmentIntersectionTree t(segs);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Coord y = 2 * geom::Coord(rng() % 60000) + 1;
    for (cat::NodeId v : t.path_for(y)) {
      const auto& c = t.tree().catalog(v);
      for (std::size_t i = 0; i < c.real_size(); ++i) {
        const auto& s = segs[c.payload(i)];
        EXPECT_TRUE(s.ylo <= y && y < s.yhi)
            << "segment in path catalog does not span the query level";
      }
    }
  }
}

TEST(SegmentTree, EverySegmentInOLogNCatalogs) {
  std::mt19937_64 rng(8);
  const auto segs = random_segments(500, rng);
  const SegmentIntersectionTree t(segs);
  std::vector<std::size_t> copies(segs.size(), 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < t.tree().num_nodes(); ++v) {
    const auto& c = t.tree().catalog(cat::NodeId(v));
    for (std::size_t i = 0; i < c.real_size(); ++i) {
      copies[c.payload(i)] += 1;
      ++total;
    }
  }
  const std::size_t height = t.tree().height();
  for (std::size_t id = 0; id < segs.size(); ++id) {
    EXPECT_GE(copies[id], 1u);
    EXPECT_LE(copies[id], 2 * height) << "segment " << id;
  }
  EXPECT_LE(total, segs.size() * 2 * height);
}

TEST(SegmentTree, SearchStepsScaleDownWithProcessors) {
  std::mt19937_64 rng(9);
  const SegmentIntersectionTree t(random_segments(20000, rng));
  std::uint64_t small = 0, big = 0;
  {
    pram::Machine m(4);
    (void)t.coop_query_ranges(m, 33333, 10, 150000);
    small = m.stats().steps;
  }
  {
    pram::Machine m(1 << 14);
    (void)t.coop_query_ranges(m, 33333, 10, 150000);
    big = m.stats().steps;
  }
  EXPECT_LT(big, small);
}

}  // namespace
