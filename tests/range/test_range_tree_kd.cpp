#include "range/range_tree_kd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "range/range_tree.hpp"

namespace {

using range::RangeTreeKD;

RangeTreeKD::PointKD rand_point(std::size_t d, std::mt19937_64& rng,
                                geom::Coord span) {
  RangeTreeKD::PointKD p(d);
  for (auto& c : p) {
    c = geom::Coord(rng() % span);
  }
  return p;
}

struct Case {
  std::size_t d;
  std::size_t n;
  std::size_t p;
  std::uint64_t seed;
};

class KdParam : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(Sweep, KdParam,
                         ::testing::Values(Case{1, 50, 4, 1},
                                           Case{2, 200, 16, 2},
                                           Case{3, 300, 64, 3},
                                           Case{4, 300, 256, 4},
                                           Case{5, 150, 64, 5}));

TEST_P(KdParam, SequentialMatchesBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed);
  std::vector<RangeTreeKD::PointKD> pts;
  for (std::size_t i = 0; i < c.n; ++i) {
    pts.push_back(rand_point(c.d, rng, 100));
  }
  const RangeTreeKD t(std::move(pts));
  EXPECT_EQ(t.dimension(), c.d);
  for (int trial = 0; trial < 40; ++trial) {
    RangeTreeKD::PointKD lo(c.d), hi(c.d);
    for (std::size_t k = 0; k < c.d; ++k) {
      lo[k] = geom::Coord(rng() % 100);
      hi[k] = lo[k] + geom::Coord(rng() % 60);
    }
    auto got = t.query(lo, hi);
    auto expect = t.query_brute(lo, hi);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << "d=" << c.d << " trial " << trial;
  }
}

TEST_P(KdParam, CooperativeMatchesBruteForce) {
  const auto c = GetParam();
  std::mt19937_64 rng(c.seed * 31);
  std::vector<RangeTreeKD::PointKD> pts;
  for (std::size_t i = 0; i < c.n; ++i) {
    pts.push_back(rand_point(c.d, rng, 80));
  }
  const RangeTreeKD t(std::move(pts));
  pram::Machine m(c.p);
  for (int trial = 0; trial < 25; ++trial) {
    RangeTreeKD::PointKD lo(c.d), hi(c.d);
    for (std::size_t k = 0; k < c.d; ++k) {
      lo[k] = geom::Coord(rng() % 80);
      hi[k] = lo[k] + geom::Coord(rng() % 50);
    }
    auto got = t.coop_query(m, lo, hi);
    auto expect = t.query_brute(lo, hi);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect);
  }
  EXPECT_GT(m.stats().steps, 0u);
}

TEST(RangeTreeKD, AgreesWithSpecialized2D) {
  std::mt19937_64 rng(7);
  std::vector<range::Point2> p2;
  std::vector<RangeTreeKD::PointKD> pk;
  for (int i = 0; i < 400; ++i) {
    const geom::Coord x = geom::Coord(rng() % 500);
    const geom::Coord y = geom::Coord(rng() % 500);
    p2.push_back(range::Point2{x, y});
    pk.push_back({x, y});
  }
  const range::RangeTree2D t2(std::move(p2));
  const RangeTreeKD tk(std::move(pk));
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Coord x1 = geom::Coord(rng() % 500);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 300);
    const geom::Coord y1 = geom::Coord(rng() % 500);
    const geom::Coord y2 = y1 + geom::Coord(rng() % 300);
    auto a = t2.query_brute(x1, x2, y1, y2);
    auto b = tk.query({x1, y1}, {x2, y2});
    // Both id spaces are sorted-point indices with identical comparators
    // on (x, y), so the id sets must coincide.
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a.size(), b.size());
  }
}

TEST(RangeTreeKD, SpaceGrowsOneLogPerDimension) {
  std::mt19937_64 rng(9);
  const std::size_t n = 512;
  std::vector<std::size_t> entries;
  for (std::size_t d = 1; d <= 4; ++d) {
    std::vector<RangeTreeKD::PointKD> pts;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(rand_point(d, rng, 1000));
    }
    const RangeTreeKD t(std::move(pts));
    entries.push_back(t.total_entries());
  }
  const double logn = std::log2(double(n));
  for (std::size_t d = 1; d < entries.size(); ++d) {
    const double growth = double(entries[d]) / double(entries[d - 1]);
    EXPECT_LE(growth, 3.0 * logn) << "d=" << d + 1;
    EXPECT_GE(growth, 1.0);
  }
}

TEST(RangeTreeKD, CoopStepsShrinkWithProcessors) {
  std::mt19937_64 rng(10);
  std::vector<RangeTreeKD::PointKD> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back(rand_point(3, rng, 2000));
  }
  const RangeTreeKD t(std::move(pts));
  const RangeTreeKD::PointKD lo{100, 100, 100}, hi{1500, 1500, 1500};
  std::uint64_t small = 0, big = 0;
  {
    pram::Machine m(4);
    (void)t.coop_query(m, lo, hi);
    small = m.stats().steps;
  }
  {
    pram::Machine m(1 << 14);
    (void)t.coop_query(m, lo, hi);
    big = m.stats().steps;
  }
  EXPECT_LT(big, small);
}

TEST(RangeTreeKD, EmptyAndSingle) {
  const RangeTreeKD empty{std::vector<RangeTreeKD::PointKD>{}};
  EXPECT_TRUE(empty.query({0}, {10}).empty());
  RangeTreeKD one{std::vector<RangeTreeKD::PointKD>{{5, 5, 5, 5}}};
  EXPECT_EQ(one.query({0, 0, 0, 0}, {9, 9, 9, 9}).size(), 1u);
  EXPECT_TRUE(one.query({6, 0, 0, 0}, {9, 9, 9, 9}).empty());
}

}  // namespace
