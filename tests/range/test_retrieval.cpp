#include "range/retrieval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "pram/primitives.hpp"
#include "range/segment_tree.hpp"

namespace {

using range::AnswerRange;

range::SegmentIntersectionTree small_tree(std::mt19937_64& rng,
                                          std::size_t n = 200) {
  std::vector<range::VSegment> segs;
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Coord x = geom::Coord(rng() % 10000) * 2;
    const geom::Coord ylo = geom::Coord(rng() % 5000) * 2;
    segs.push_back(range::VSegment{x, ylo, ylo + 2 + geom::Coord(rng() % 5000) * 2});
  }
  return range::SegmentIntersectionTree(std::move(segs));
}

TEST(RetrieveDirect, MatchesHostExtraction) {
  std::mt19937_64 rng(1);
  const auto t = small_tree(rng);
  pram::Machine m(16);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Coord y = 2 * geom::Coord(rng() % 10000) + 1;
    const geom::Coord x1 = geom::Coord(rng() % 20000);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 20000);
    const auto ranges = t.query_ranges(y, x1, x2);
    auto got = range::retrieve_direct(t.tree(), m, ranges);
    auto expect = t.query_brute(y, x1, x2);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect);
  }
}

TEST(RetrieveDirect, EmptyRanges) {
  pram::Machine m(4);
  std::mt19937_64 rng(2);
  const auto t = small_tree(rng, 10);
  EXPECT_TRUE(range::retrieve_direct(t.tree(), m, {}).empty());
  // All-empty ranges.
  std::vector<AnswerRange> ranges{{cat::NodeId(0), 3, 3},
                                  {cat::NodeId(1), 0, 0}};
  EXPECT_TRUE(range::retrieve_direct(t.tree(), m, ranges).empty());
}

TEST(RetrieveDirect, TimeIsScanPlusKOverP) {
  std::mt19937_64 rng(3);
  const auto t = small_tree(rng, 2000);
  const geom::Coord y = 5001;
  const auto ranges = t.query_ranges(y, 0, 1'000'000);
  const std::size_t k = range::total_count(ranges);
  ASSERT_GT(k, 0u);
  pram::Machine m(1024);
  (void)range::retrieve_direct(t.tree(), m, ranges);
  // O(log log n)-ish scan plus k/p: generous constant bound.
  EXPECT_LE(m.stats().steps,
            12 * pram::ceil_log2(ranges.size() + 2) + 4 * (k / 1024 + 1) + 40);
}

TEST(RetrieveIndirect, CrcwLinkingSkipsEmptyRanges) {
  std::mt19937_64 rng(4);
  const auto t = small_tree(rng);
  pram::Machine m(1 << 12, pram::Model::kCrcw);
  std::vector<AnswerRange> ranges{
      {cat::NodeId(0), 0, 0},  {cat::NodeId(1), 2, 5},
      {cat::NodeId(2), 1, 1},  {cat::NodeId(3), 0, 3},
      {cat::NodeId(4), 7, 7},  {cat::NodeId(5), 4, 6},
  };
  const auto list = range::retrieve_indirect(m, ranges);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].node, cat::NodeId(1));
  EXPECT_EQ(list[1].node, cat::NodeId(3));
  EXPECT_EQ(list[2].node, cat::NodeId(5));
}

TEST(RetrieveIndirect, PrefixFallbackMatchesCrcw) {
  std::mt19937_64 rng(5);
  std::vector<AnswerRange> ranges;
  for (int i = 0; i < 40; ++i) {
    const std::uint32_t lo = std::uint32_t(rng() % 10);
    const std::uint32_t hi = lo + std::uint32_t(rng() % 4);
    ranges.push_back(AnswerRange{cat::NodeId(i), lo, hi});
  }
  pram::Machine crcw(1 << 12, pram::Model::kCrcw);
  pram::Machine crew(4, pram::Model::kCrew);
  const auto a = range::retrieve_indirect(crcw, ranges);
  const auto b = range::retrieve_indirect(crew, ranges);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
}

TEST(RetrieveIndirect, IndirectIsFasterThanDirectForLargeK) {
  // The point of indirect retrieval: O((log n)/log p) regardless of k.
  std::mt19937_64 rng(6);
  const auto t = small_tree(rng, 5000);
  const auto ranges = t.query_ranges(5001, 0, 10'000'000);
  const std::size_t k = range::total_count(ranges);
  ASSERT_GT(k, 100u);
  pram::Machine direct_m(64);
  (void)range::retrieve_direct(t.tree(), direct_m, ranges);
  pram::Machine indirect_m(1 << 12, pram::Model::kCrcw);
  (void)range::retrieve_indirect(indirect_m, ranges);
  EXPECT_LT(indirect_m.stats().steps, direct_m.stats().steps);
}

TEST(TotalCount, SumsRanges) {
  std::vector<AnswerRange> ranges{{cat::NodeId(0), 1, 4},
                                  {cat::NodeId(1), 0, 0},
                                  {cat::NodeId(2), 5, 9}};
  EXPECT_EQ(range::total_count(ranges), 7u);
}

}  // namespace
