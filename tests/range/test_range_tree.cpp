#include "range/range_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace {

using range::Point2;
using range::RangeTree2D;
using range::RangeTree3D;

std::vector<Point2> random_points(std::size_t n, std::mt19937_64& rng,
                                  geom::Coord span = 100000) {
  std::vector<Point2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Point2{geom::Coord(rng() % span), geom::Coord(rng() % span)});
  }
  return out;
}

std::vector<std::uint64_t> ids_of(const RangeTree2D& t,
                                  const std::vector<range::AnswerRange>& rs) {
  std::vector<std::uint64_t> out;
  for (const auto& r : rs) {
    const auto& c = t.tree().catalog(r.node);
    for (std::uint32_t i = r.lo; i < r.hi; ++i) {
      out.push_back(c.payload(i));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class RangeTreeParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeTreeParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 2),
                      std::make_pair<std::size_t, std::size_t>(7, 4),
                      std::make_pair<std::size_t, std::size_t>(64, 16),
                      std::make_pair<std::size_t, std::size_t>(300, 64),
                      std::make_pair<std::size_t, std::size_t>(2000, 1024)));

TEST_P(RangeTreeParam, SequentialMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n + p);
  const RangeTree2D t(random_points(n, rng));
  for (int trial = 0; trial < 80; ++trial) {
    const geom::Coord x1 = geom::Coord(rng() % 100000);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 50000);
    const geom::Coord y1 = geom::Coord(rng() % 100000);
    const geom::Coord y2 = y1 + geom::Coord(rng() % 50000);
    auto expect = t.query_brute(x1, x2, y1, y2);
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(ids_of(t, t.query_ranges(x1, x2, y1, y2)), expect)
        << "[" << x1 << "," << x2 << "]x[" << y1 << "," << y2 << "]";
  }
}

TEST_P(RangeTreeParam, CooperativeMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 3 + p);
  const RangeTree2D t(random_points(n, rng));
  pram::Machine m(p);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Coord x1 = geom::Coord(rng() % 100000);
    const geom::Coord x2 = x1 + geom::Coord(rng() % 70000);
    const geom::Coord y1 = geom::Coord(rng() % 100000);
    const geom::Coord y2 = y1 + geom::Coord(rng() % 70000);
    auto expect = t.query_brute(x1, x2, y1, y2);
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(ids_of(t, t.coop_query_ranges(m, x1, x2, y1, y2)), expect);
  }
}

TEST(RangeTree2D, EmptyAndFullRanges) {
  std::mt19937_64 rng(5);
  const RangeTree2D t(random_points(100, rng));
  EXPECT_TRUE(t.query_ranges(200000, 300000, 0, 100000).empty());
  auto expect = t.query_brute(0, 200000, 0, 200000);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(expect.size(), 100u);
  EXPECT_EQ(ids_of(t, t.query_ranges(0, 200000, 0, 200000)), expect);
}

TEST(RangeTree2D, DuplicateCoordinates) {
  std::vector<Point2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back(Point2{42, geom::Coord(i % 5)});
  }
  const RangeTree2D t(std::move(pts));
  auto expect = t.query_brute(42, 42, 1, 3);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(expect.size(), 30u);
  EXPECT_EQ(ids_of(t, t.query_ranges(42, 42, 1, 3)), expect);
}

TEST(RangeTree2D, SpaceIsNLogN) {
  std::mt19937_64 rng(6);
  const std::size_t n = 4096;
  const RangeTree2D t(random_points(n, rng));
  const double logn = std::log2(double(n));
  // Catalog entries alone are n log n; cascading/skeletons add a constant.
  EXPECT_LE(double(t.total_entries()), 12.0 * n * logn);
}

class RangeTree3DParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeTree3DParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 4),
                      std::make_pair<std::size_t, std::size_t>(20, 8),
                      std::make_pair<std::size_t, std::size_t>(128, 64),
                      std::make_pair<std::size_t, std::size_t>(500, 512)));

TEST_P(RangeTree3DParam, SequentialMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 7 + p);
  std::vector<RangeTree3D::Point3> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({geom::Coord(rng() % 1000), geom::Coord(rng() % 1000),
                   geom::Coord(rng() % 1000)});
  }
  const RangeTree3D t(std::move(pts));
  for (int trial = 0; trial < 40; ++trial) {
    geom::Coord b[6];
    for (int k = 0; k < 3; ++k) {
      b[2 * k] = geom::Coord(rng() % 1000);
      b[2 * k + 1] = b[2 * k] + geom::Coord(rng() % 600);
    }
    auto expect = t.query_brute(b[0], b[1], b[2], b[3], b[4], b[5]);
    auto got = t.query(b[0], b[1], b[2], b[3], b[4], b[5]);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect);
  }
}

TEST_P(RangeTree3DParam, CooperativeMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 13 + p);
  std::vector<RangeTree3D::Point3> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({geom::Coord(rng() % 500), geom::Coord(rng() % 500),
                   geom::Coord(rng() % 500)});
  }
  const RangeTree3D t(std::move(pts));
  pram::Machine m(p);
  for (int trial = 0; trial < 25; ++trial) {
    geom::Coord b[6];
    for (int k = 0; k < 3; ++k) {
      b[2 * k] = geom::Coord(rng() % 500);
      b[2 * k + 1] = b[2 * k] + geom::Coord(rng() % 300);
    }
    auto expect = t.query_brute(b[0], b[1], b[2], b[3], b[4], b[5]);
    auto got = t.coop_query(m, b[0], b[1], b[2], b[3], b[4], b[5]);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect);
  }
}

}  // namespace
