#include "range/point_enclosure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace {

using range::PointEnclosureTree;
using range::Rect;

std::vector<Rect> random_rects(std::size_t n, std::mt19937_64& rng,
                               geom::Coord span = 100000) {
  std::vector<Rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Coord x1 = geom::Coord(rng() % span);
    const geom::Coord y1 = geom::Coord(rng() % span);
    out.push_back(Rect{x1, x1 + geom::Coord(rng() % (span / 2)), y1,
                       y1 + geom::Coord(rng() % (span / 2))});
  }
  return out;
}

class EnclosureParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnclosureParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 2),
                      std::make_pair<std::size_t, std::size_t>(10, 4),
                      std::make_pair<std::size_t, std::size_t>(100, 32),
                      std::make_pair<std::size_t, std::size_t>(1000, 512)));

TEST_P(EnclosureParam, SequentialMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n + 3 * p);
  const PointEnclosureTree t(random_rects(n, rng));
  for (int trial = 0; trial < 80; ++trial) {
    const geom::Coord x = geom::Coord(rng() % 160000);
    const geom::Coord y = geom::Coord(rng() % 160000);
    auto expect = t.query_brute(x, y);
    auto got = t.query(x, y);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "q=(" << x << "," << y << ")";
  }
}

TEST_P(EnclosureParam, CooperativeMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n + 7 * p);
  const PointEnclosureTree t(random_rects(n, rng));
  pram::Machine m(p);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Coord x = geom::Coord(rng() % 160000);
    const geom::Coord y = geom::Coord(rng() % 160000);
    auto expect = t.query_brute(x, y);
    auto got = t.coop_query(m, x, y);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect);
  }
}

TEST(PointEnclosure, BoundariesInclusive) {
  const std::vector<Rect> rects{{10, 20, 30, 40}};
  const PointEnclosureTree t(rects);
  EXPECT_EQ(t.query(10, 30).size(), 1u);
  EXPECT_EQ(t.query(20, 40).size(), 1u);
  EXPECT_EQ(t.query(9, 35).size(), 0u);
  EXPECT_EQ(t.query(21, 35).size(), 0u);
  EXPECT_EQ(t.query(15, 29).size(), 0u);
  EXPECT_EQ(t.query(15, 41).size(), 0u);
}

TEST(PointEnclosure, HeavilyNestedRectangles) {
  std::vector<Rect> rects;
  for (geom::Coord i = 0; i < 100; ++i) {
    rects.push_back(Rect{i, 200 - i, i, 200 - i});
  }
  const PointEnclosureTree t(rects);
  auto got = t.query(100, 100);  // inside all 100
  EXPECT_EQ(got.size(), 100u);
  got = t.query(50, 100);  // inside rects with i <= 50
  EXPECT_EQ(got.size(), 51u);
}

class Enclosure3DParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, Enclosure3DParam,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 4),
                      std::make_pair<std::size_t, std::size_t>(25, 8),
                      std::make_pair<std::size_t, std::size_t>(200, 64),
                      std::make_pair<std::size_t, std::size_t>(800, 512)));

std::vector<range::Box> random_boxes(std::size_t n, std::mt19937_64& rng,
                                     geom::Coord span = 10000) {
  std::vector<range::Box> out;
  for (std::size_t i = 0; i < n; ++i) {
    range::Box b;
    b.x1 = geom::Coord(rng() % span);
    b.x2 = b.x1 + geom::Coord(rng() % (span / 2));
    b.y1 = geom::Coord(rng() % span);
    b.y2 = b.y1 + geom::Coord(rng() % (span / 2));
    b.z1 = geom::Coord(rng() % span);
    b.z2 = b.z1 + geom::Coord(rng() % (span / 2));
    out.push_back(b);
  }
  return out;
}

TEST_P(Enclosure3DParam, SequentialMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 3 + p);
  const range::PointEnclosure3D t(random_boxes(n, rng));
  for (int trial = 0; trial < 60; ++trial) {
    const geom::Coord x = geom::Coord(rng() % 16000);
    const geom::Coord y = geom::Coord(rng() % 16000);
    const geom::Coord z = geom::Coord(rng() % 16000);
    auto got = t.query(x, y, z);
    auto expect = t.query_brute(x, y, z);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << "q=(" << x << "," << y << "," << z << ")";
  }
}

TEST_P(Enclosure3DParam, CooperativeMatchesBruteForce) {
  const auto [n, p] = GetParam();
  std::mt19937_64 rng(n * 7 + p);
  const range::PointEnclosure3D t(random_boxes(n, rng));
  pram::Machine m(p);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Coord x = geom::Coord(rng() % 16000);
    const geom::Coord y = geom::Coord(rng() % 16000);
    const geom::Coord z = geom::Coord(rng() % 16000);
    auto got = t.coop_query(m, x, y, z);
    auto expect = t.query_brute(x, y, z);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect);
  }
}

TEST(PointEnclosure3D, NestedBoxes) {
  std::vector<range::Box> boxes;
  for (geom::Coord i = 0; i < 50; ++i) {
    boxes.push_back(range::Box{i, 100 - i, i, 100 - i, i, 100 - i});
  }
  const range::PointEnclosure3D t(std::move(boxes));
  EXPECT_EQ(t.query(50, 50, 50).size(), 50u);
  EXPECT_EQ(t.query(10, 50, 50).size(), 11u);
  EXPECT_EQ(t.query(50, 50, 5).size(), 6u);
}

TEST(PointEnclosure3D, SpaceIsNLog2N) {
  std::mt19937_64 rng(21);
  const std::size_t n = 2048;
  const range::PointEnclosure3D t(random_boxes(n, rng));
  const double logn = std::log2(double(n));
  EXPECT_LE(double(t.total_entries()), 4.0 * n * logn * logn);
}

TEST(PointEnclosure, ReportCostBoundedByLogPlusK) {
  std::mt19937_64 rng(11);
  const std::size_t n = 5000;
  const PointEnclosureTree t(random_rects(n, rng));
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Coord x = geom::Coord(rng() % 160000);
    const geom::Coord y = geom::Coord(rng() % 160000);
    pram::Machine m(4);
    const auto got = t.coop_query(m, x, y);
    // Work should be O(log^2 n + k log n), far below n.
    const double logn = std::log2(double(n));
    EXPECT_LE(double(m.stats().work),
              40.0 * logn * logn + 8.0 * double(got.size()) * logn + 100)
        << "k=" << got.size();
  }
}

}  // namespace
